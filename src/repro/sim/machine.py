"""Machine model: alpha-beta-gamma costs with per-collective algorithms.

The simulator charges every operation a *base cost* derived from the
classic alpha-beta-gamma model used throughout the paper's BSP
analysis:

* ``alpha`` — per-message latency (seconds),
* ``beta``  — inverse bandwidth (seconds per byte),
* ``gamma`` — time per floating-point operation (seconds).

Collectives use textbook tree / recursive-doubling cost formulas (the
same asymptotics MPICH/Intel MPI implementations achieve), so the BSP
communication/synchronization trade-offs of Section V emerge from the
schedules rather than being hard-coded.

The defaults approximate one Stampede2 KNL core driving an Omni-Path
NIC: ~2 us latency, ~2 GB/s effective per-process bandwidth, ~20 Gflop/s
per-process DGEMM rate.  Absolute values only set the overall time
scale; the reproduction targets shapes, not seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.kernels.roofline import bytes_per_flop
from repro.kernels.signature import KernelSignature

__all__ = ["CollectiveCosts", "LoadRegime", "Machine"]


def _log2ceil(p: int) -> int:
    return max(1, math.ceil(math.log2(max(p, 2))))


@dataclass(frozen=True, slots=True)
class CollectiveCosts:
    """Cost formulas for MPI collectives over ``p`` ranks moving ``n`` bytes.

    ``n`` is the *per-rank payload* in bytes (the buffer each rank sends
    or receives, matching the MPI count argument), mirroring how the
    paper parameterizes communication kernels on message size.
    """

    alpha: float
    beta: float

    def p2p(self, nbytes: int) -> float:
        return self.alpha + self.beta * nbytes

    def bcast(self, nbytes: int, p: int) -> float:
        # binomial tree
        return _log2ceil(p) * (self.alpha + self.beta * nbytes)

    def reduce(self, nbytes: int, p: int) -> float:
        # mirrored binomial tree (reduction flops charged to gamma by caller)
        return _log2ceil(p) * (self.alpha + self.beta * nbytes)

    def allreduce(self, nbytes: int, p: int) -> float:
        # recursive halving + doubling
        return 2.0 * _log2ceil(p) * self.alpha + 2.0 * self.beta * nbytes

    def allgather(self, nbytes: int, p: int) -> float:
        # recursive doubling; each rank ends with p*nbytes
        return _log2ceil(p) * self.alpha + self.beta * nbytes * max(p - 1, 1)

    def gather(self, nbytes: int, p: int) -> float:
        return _log2ceil(p) * self.alpha + self.beta * nbytes * max(p - 1, 1)

    def scatter(self, nbytes: int, p: int) -> float:
        return _log2ceil(p) * self.alpha + self.beta * nbytes * max(p - 1, 1)

    def alltoall(self, nbytes: int, p: int) -> float:
        return _log2ceil(p) * self.alpha + self.beta * nbytes * max(p - 1, 1)

    def barrier(self, p: int) -> float:
        return 2.0 * _log2ceil(p) * self.alpha

    def cost(self, name: str, nbytes: int, p: int) -> float:
        """Dispatch by collective name (``"bcast"``, ``"reduce"``, ...)."""
        if name == "barrier":
            return self.barrier(p)
        fn = getattr(self, name, None)
        if fn is None:
            raise ValueError(f"unknown collective {name!r}")
        return fn(nbytes, p)


@dataclass(frozen=True, slots=True)
class LoadRegime:
    """Multiplicative load-regime adjustments for a machine preset.

    Real clusters do not sit at one operating point: CORTEX measures
    latency distributions that shift with ambient load, including the
    "Idle Paradox" where idle machines run *slower* than loaded ones
    because DVFS parks the cores at low clocks.  A regime bundles the
    multiplicative factors and noise overrides that move a preset
    between such operating points.

    Attributes
    ----------
    name:
        Regime identity (``"default"``, ``"idle"``, ``"medium"``,
        ``"heavy"``); flows into :attr:`Machine.regime` and
        :attr:`~repro.sim.noise.NoiseModel.regime` so fingerprints and
        noise streams never alias across regimes.
    comp_factor, comm_factor:
        Multipliers applied to ``gamma`` and to ``alpha``/``beta``
        respectively.  The default regime uses 1.0 for both, which is
        bit-identical to the unscaled model (``x * 1.0 == x`` in IEEE
        arithmetic).
    mem_beta:
        Roofline memory ceiling in seconds per byte of kernel traffic.
        When positive, a computational kernel's effective time per flop
        is ``max(gamma * comp_factor, mem_beta * bytes_per_flop(sig))``
        — bandwidth-bound kernels (low arithmetic intensity) pay the
        memory term, flop-bound kernels keep the gamma term.  0.0
        disables the ceiling (pre-roofline pricing).
    comp_cv, comm_cv, run_cv:
        Optional per-regime noise overrides; ``None`` keeps the
        preset's ambient coefficient of variation.
    """

    name: str
    comp_factor: float = 1.0
    comm_factor: float = 1.0
    mem_beta: float = 0.0
    comp_cv: float | None = None
    comm_cv: float | None = None
    run_cv: float | None = None


@dataclass(frozen=True, slots=True)
class Machine:
    """A simulated distributed-memory machine.

    Attributes
    ----------
    nprocs:
        Number of MPI ranks the machine hosts.
    alpha, beta, gamma:
        Latency (s), inverse bandwidth (s/byte), time per flop (s).
    intercept_alpha:
        Latency of one *internal* profiler message (the PMPI-level
        sendrecv/allreduce Critter issues in Fig. 2).  This is the
        irreducible per-kernel cost of selective execution — skipping a
        kernel still pays this overhead.
    skip_overhead:
        Local bookkeeping time charged when a computational kernel is
        skipped (hash lookup + branch in the real tool).
    seed:
        Machine identity seed; combined with kernel signatures to draw
        the per-signature efficiency biases (see
        :class:`~repro.sim.noise.NoiseModel`).  Two machines with
        different seeds rank configurations differently — this is what
        autotuning discovers.
    batched_compute:
        When True, a :class:`~repro.sim.ops.ComputeBatchOp` is charged
        as one aggregate kernel (one noise draw over ``count * flops``)
        instead of being expanded into its per-sub-kernel equivalents.
        A deliberate model coarsening for throughput studies; off by
        default so results stay bit-identical to per-op emission.
    comp_scale, comm_scale:
        Load-regime multipliers on compute (``gamma``) and
        application-level communication (``alpha``/``beta``) costs.
        The defaults of 1.0 are bit-identical to the unscaled model;
        ``intercept_alpha`` (the profiler's internal messages) stays
        unscaled — regimes model application traffic contention, not
        the tool's own overhead.
    mem_beta:
        Roofline memory ceiling (seconds/byte); see
        :class:`LoadRegime`.  0.0 (the default) disables it.
    regime:
        Name of the load regime this machine was instantiated under;
        carried for fingerprinting and reporting.
    """

    nprocs: int
    alpha: float = 2.0e-6
    beta: float = 5.0e-10
    gamma: float = 5.0e-11
    intercept_alpha: float = 2.0e-8
    skip_overhead: float = 1.0e-8
    seed: int = 0
    batched_compute: bool = False
    comp_scale: float = 1.0
    comm_scale: float = 1.0
    mem_beta: float = 0.0
    regime: str = "default"

    def collectives(self) -> CollectiveCosts:
        return CollectiveCosts(self.alpha * self.comm_scale,
                               self.beta * self.comm_scale)

    # ------------------------------------------------------------------
    # base (noise-free) costs
    # ------------------------------------------------------------------
    def time_per_flop(self, sig: KernelSignature | None = None) -> float:
        """Effective seconds per flop for a kernel signature.

        The regime-scaled gamma term, lifted to the roofline memory
        ceiling ``mem_beta * bytes_per_flop(sig)`` when that is higher
        — so per-invocation cost equals
        ``max(flops / peak_flops, bytes / peak_bw)`` scaled by the
        kernel's flop count, and aggregated batches (``flops * count``)
        scale both terms coherently.  With ``sig=None`` or an unmodeled
        kernel only the gamma term applies.
        """
        g = self.gamma * self.comp_scale
        if self.mem_beta > 0.0 and sig is not None:
            mem = self.mem_beta * bytes_per_flop(sig)
            if mem > g:
                return mem
        return g

    def compute_cost(self, flops: float,
                     sig: KernelSignature | None = None) -> float:
        """Base cost of a computational kernel performing ``flops`` flops."""
        return self.time_per_flop(sig) * float(flops)

    def comm_cost(self, sig: KernelSignature) -> float:
        """Base cost of a communication kernel from its signature.

        The signature's params are ``(nbytes, comm_size, comm_stride)``
        as produced by :func:`repro.kernels.comm_signature`.
        """
        nbytes, p, _stride = sig.params
        cc = self.collectives()
        if sig.name in ("p2p", "send", "recv", "sendrecv", "isend", "irecv"):
            return cc.p2p(nbytes)
        return cc.cost(sig.name, nbytes, p)

    def comm_cost_memo(self) -> Callable[[KernelSignature], float]:
        """A memoized :meth:`comm_cost` bound to this machine.

        ``comm_cost`` is a pure function of (machine, signature), but
        computing it rebuilds the :class:`CollectiveCosts` object and
        re-evaluates the log terms on every call — measurable in the
        engine hot loop, where collective-dense workloads reuse a
        handful of signatures millions of times.  The returned callable
        holds a per-(signature, machine) cache (signatures are interned,
        so probes hit the identity fast path), mirroring the engine's
        per-(signature, run) compute-noise-factor cache.  The machine is
        frozen, so the memo never needs invalidation.
        """
        cache: Dict[KernelSignature, float] = {}
        comm_cost = self.comm_cost

        def cost(sig: KernelSignature) -> float:
            c = cache.get(sig)
            if c is None:
                c = cache[sig] = comm_cost(sig)
            return c

        return cost

    def time_per_flop_memo(
            self) -> Callable[[Optional[KernelSignature]], float]:
        """A memoized :meth:`time_per_flop` bound to this machine.

        Same lifetime argument as :meth:`comm_cost_memo`: the roofline
        price is a pure function of (machine, signature) and the
        machine is frozen, so the engine's compute hot loops can skip
        the attribute traffic and the roofline branch after a
        signature's first pricing.  The memoized value feeds the same
        ``tpf(sig) * float(flops)`` product as :meth:`compute_cost`,
        keeping the float-op sequence bit-identical.
        """
        cache: Dict[Optional[KernelSignature], float] = {}
        time_per_flop = self.time_per_flop

        def cost(sig: Optional[KernelSignature]) -> float:
            c = cache.get(sig)
            if c is None:
                c = cache[sig] = time_per_flop(sig)
            return c

        return cost

    def base_cost(self, sig: KernelSignature, flops: float = 0.0) -> float:
        if sig.is_comm:
            return self.comm_cost(sig)
        return self.compute_cost(flops, sig)

    def internal_cost(self, p: int) -> float:
        """Cost of Critter's internal allreduce among ``p`` ranks."""
        return 2.0 * _log2ceil(p) * self.intercept_alpha
