"""Fingerprint-completeness analyzer.

The runner's disk cache, the sweep manifests' grid ids, and cross-
session dedupe all key on :func:`repro.runner.jobs.request_key` — a
sha256 over :func:`request_fingerprint`.  A configuration field that
does not flow into the fingerprint makes two *different* experiments
content-address to the same cache entry: a new tuning knob silently
aliases results, which is the most expensive class of determinism bug
the service direction can grow (stale RunResults poisoning transfer
learning, resumed sweeps replaying the wrong grid).

This analyzer parses ``repro/runner/jobs.py`` (plus ``sim/machine.py``
and ``sim/noise.py`` for the nested dataclasses) and verifies:

* every dataclass field of ``RunRequest`` is referenced as
  ``req.<field>`` inside ``request_fingerprint`` or inside a module
  helper it calls with the request (``_noise_fingerprint(req)``);
* every field of ``Machine`` is read off the machine binding
  (``m = req.machine`` ... ``m.alpha``) inside the fingerprint;
* every public field of ``NoiseModel`` is read off the noise binding
  inside ``_noise_fingerprint``.

Adding a field to any of the three dataclasses without threading it
into the fingerprint fails the lint with the field named — the
"phantom knob" mutation the test suite injects.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.engine import Analyzer, Finding, register_analyzer

__all__ = ["check_fingerprint_completeness"]

RULE_ID = "fingerprint-completeness"
JOBS_REL = "repro/runner/jobs.py"
MACHINE_REL = "repro/sim/machine.py"
NOISE_REL = "repro/sim/noise.py"

FINGERPRINT_FN = "request_fingerprint"
REQUEST_CLASS = "RunRequest"
MACHINE_CLASS = "Machine"
NOISE_CLASS = "NoiseModel"


def _dataclass_fields(tree: ast.Module, class_name: str) -> Dict[str, int]:
    """``{field name: lineno}`` of a dataclass's public annotated fields."""
    cls = next((n for n in tree.body if isinstance(n, ast.ClassDef)
                and n.name == class_name), None)
    if cls is None:
        return {}
    fields: Dict[str, int] = {}
    for node in cls.body:
        if isinstance(node, ast.AnnAssign) and isinstance(node.target,
                                                          ast.Name):
            name = node.target.id
            if not name.startswith("_"):
                fields[name] = node.lineno
    return fields


def _functions(tree: ast.Module) -> Dict[str, ast.FunctionDef]:
    return {n.name: n for n in tree.body if isinstance(n, ast.FunctionDef)}


def _param_attr_reads(fn: ast.FunctionDef, param: str) -> Set[str]:
    """Attributes read off ``param`` (first level: ``param.x``)."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == param:
            out.add(node.attr)
    return out


def _attr_reads_of(fn: ast.FunctionDef, names: Set[str]) -> Set[str]:
    """Attributes read off any of the given local names."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id in names:
            out.add(node.attr)
    return out


def _bindings_from(fn: ast.FunctionDef, source_attr: Optional[str],
                   param: str) -> Set[str]:
    """Local names bound from ``param`` or ``param.<source_attr>``.

    ``_bindings_from(fn, "machine", "req")`` finds ``m`` in
    ``m = req.machine``;  ``_bindings_from(fn, "noise", "req")`` finds
    ``n`` in ``n = req.noise if req.noise is not None else ...``.
    """
    names: Set[str] = set()
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            continue
        for sub in ast.walk(node.value):
            if source_attr is None:
                if isinstance(sub, ast.Name) and sub.id == param:
                    names.add(node.targets[0].id)
                    break
            elif isinstance(sub, ast.Attribute) and sub.attr == source_attr \
                    and isinstance(sub.value, ast.Name) \
                    and sub.value.id == param:
                names.add(node.targets[0].id)
                break
    return names


def _helpers_called_with(fn: ast.FunctionDef, param: str,
                         module_fns: Dict[str, ast.FunctionDef],
                         ) -> List[ast.FunctionDef]:
    """Module functions the fingerprint calls with the request itself."""
    out: List[ast.FunctionDef] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in module_fns:
            if any(isinstance(a, ast.Name) and a.id == param
                   for a in node.args):
                out.append(module_fns[node.func.id])
    return out


def check_fingerprint_completeness(root: Path) -> Iterator[Finding]:
    jobs_path = root / JOBS_REL
    if not jobs_path.is_file():
        return

    def fail(line: int, message: str,
             path: str = JOBS_REL) -> Finding:
        return Finding(RULE_ID, "error", path, line, 0, message)

    jobs = ast.parse(jobs_path.read_text(encoding="utf-8"),
                     filename=JOBS_REL)
    req_fields = _dataclass_fields(jobs, REQUEST_CLASS)
    module_fns = _functions(jobs)
    fp = module_fns.get(FINGERPRINT_FN)
    if not req_fields or fp is None or not fp.args.args:
        yield fail(1, f"cannot locate {REQUEST_CLASS} fields and "
                      f"{FINGERPRINT_FN}(): the fingerprint-completeness "
                      f"gate needs updating for this refactor")
        return
    req_param = fp.args.args[0].arg

    # request fields covered in the fingerprint body or in helpers
    # called with the request (e.g. _noise_fingerprint(req))
    covered = _param_attr_reads(fp, req_param)
    for helper in _helpers_called_with(fp, req_param, module_fns):
        if helper.args.args:
            covered |= _param_attr_reads(helper, helper.args.args[0].arg)
    for name, lineno in sorted(req_fields.items()):
        if name not in covered:
            yield fail(lineno,
                       f"{REQUEST_CLASS}.{name} never flows into "
                       f"{FINGERPRINT_FN}(): two requests differing only "
                       f"in {name!r} would alias the same cache entry — "
                       f"add it to the fingerprint (and bump its version)")

    # nested Machine fields: every field must be read off the machine
    # binding inside the fingerprint
    machine_path = root / MACHINE_REL
    if machine_path.is_file():
        machine = ast.parse(machine_path.read_text(encoding="utf-8"),
                            filename=MACHINE_REL)
        m_fields = _dataclass_fields(machine, MACHINE_CLASS)
        m_names = _bindings_from(fp, "machine", req_param)
        m_covered = _attr_reads_of(fp, m_names)
        # fields reached through req.machine.<attr> chains in helpers
        for helper in _helpers_called_with(fp, req_param, module_fns):
            if helper.args.args:
                p = helper.args.args[0].arg
                for node in ast.walk(helper):
                    if isinstance(node, ast.Attribute) \
                            and isinstance(node.value, ast.Attribute) \
                            and node.value.attr == "machine" \
                            and isinstance(node.value.value, ast.Name) \
                            and node.value.value.id == p:
                        m_covered.add(node.attr)
        for name, lineno in sorted(m_fields.items()):
            if name not in m_covered:
                yield fail(lineno,
                           f"{MACHINE_CLASS}.{name} never flows into "
                           f"{FINGERPRINT_FN}(): machines differing only "
                           f"in {name!r} would share cache entries",
                           path=MACHINE_REL)

    # nested NoiseModel fields: read off the noise binding inside
    # _noise_fingerprint (or whatever helper receives the request)
    noise_path = root / NOISE_REL
    if noise_path.is_file():
        noise = ast.parse(noise_path.read_text(encoding="utf-8"),
                          filename=NOISE_REL)
        n_fields = _dataclass_fields(noise, NOISE_CLASS)
        n_covered: Set[str] = set()
        for fn in (fp, *_helpers_called_with(fp, req_param, module_fns)):
            if not fn.args.args:
                continue
            p = fn.args.args[0].arg
            n_names = _bindings_from(fn, "noise", p)
            n_covered |= _attr_reads_of(fn, n_names)
        for name, lineno in sorted(n_fields.items()):
            if name not in n_covered:
                yield fail(lineno,
                           f"{NOISE_CLASS}.{name} never flows into the "
                           f"noise fingerprint: noise processes differing "
                           f"only in {name!r} would share cache entries",
                           path=NOISE_REL)


register_analyzer(Analyzer(
    id=RULE_ID,
    severity="error",
    description=("every RunRequest/Machine/NoiseModel field must flow "
                 "into request_key so new tuning knobs can never alias "
                 "cache entries or sweep-manifest grid ids"),
    run=check_fingerprint_completeness,
))
