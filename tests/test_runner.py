"""Experiment runner: determinism, caching, and invalidation."""

import dataclasses

import pytest

from repro.autotune import (
    ExhaustiveTuner,
    capital_cholesky_space,
    measure_ground_truth,
    tolerance_sweep,
)
from repro.autotune.tuner import default_machine, ground_truth_requests
from repro.runner import (
    GROUND_TRUTH,
    TUNE_CONFIG,
    ParallelExecutor,
    ResultCache,
    Runner,
    RunRequest,
    SerialExecutor,
    execute_request,
    make_runner,
    request_key,
)
from repro.sim.machine import Machine


@pytest.fixture(scope="module")
def space():
    return capital_cholesky_space(n=64, c=2, b0=4, nconf=4)


@pytest.fixture(scope="module")
def machine(space):
    return default_machine(space, seed=3)


def tuning_numbers(result):
    """Exact per-configuration values of one TuningResult."""
    return [
        (o.index, o.tuning_time, o.offline_time, o.predicted.exec_time,
         o.predicted.comp_time, o.max_rank_kernel_time, o.skip_fraction)
        for o in result.outcomes
    ]


def sweep_numbers(sweep):
    return {
        point: tuning_numbers(res) for point, res in sorted(sweep.points.items())
    }


# ----------------------------------------------------------------------
# jobs
# ----------------------------------------------------------------------
class TestRequests:
    def test_rejects_unknown_kind(self, space, machine):
        with pytest.raises(ValueError):
            RunRequest(kind="nonsense", space=space, machine=machine)

    def test_requires_config_index(self, space, machine):
        with pytest.raises(ValueError):
            RunRequest(kind=GROUND_TRUTH, space=space, machine=machine)

    def test_key_is_deterministic(self, space, machine):
        a = RunRequest(kind=GROUND_TRUTH, space=space, machine=machine,
                       config_index=0)
        b = RunRequest(kind=GROUND_TRUTH, space=space, machine=machine,
                       config_index=0)
        assert request_key(a) == request_key(b)

    def test_key_separates_roles(self, space, machine):
        gt = RunRequest(kind=GROUND_TRUTH, space=space, machine=machine,
                        config_index=0)
        tc = RunRequest(kind=TUNE_CONFIG, space=space, machine=machine,
                        config_index=0, policy="online", eps=0.25)
        assert request_key(gt) != request_key(tc)

    def test_execute_is_pure(self, space, machine):
        req = RunRequest(kind=TUNE_CONFIG, space=space, machine=machine,
                         config_index=1, policy="online", eps=0.25, reps=2)
        a, b = execute_request(req), execute_request(req)
        assert a.outputs[0].tuning_time == b.outputs[0].tuning_time
        assert a.outputs[0].predicted.exec_time == b.outputs[0].predicted.exec_time


# ----------------------------------------------------------------------
# serial-vs-parallel determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    POLICIES = ("conditional", "online", "apriori", "eager")

    def test_tuner_identical_across_executors(self, space, machine):
        ground = measure_ground_truth(space, machine, full_reps=2, seed=0)
        for policy in self.POLICIES:
            serial = ExhaustiveTuner(
                space, machine, policy=policy, eps=0.25, reps=2,
                ground_truth=ground, seed=0,
                runner=Runner(executor=SerialExecutor()),
            ).run()
            parallel = ExhaustiveTuner(
                space, machine, policy=policy, eps=0.25, reps=2,
                ground_truth=ground, seed=0,
                runner=Runner(executor=ParallelExecutor(jobs=3)),
            ).run()
            assert tuning_numbers(serial) == tuning_numbers(parallel), policy

    def test_sweep_identical_across_job_counts(self, space, machine):
        kw = dict(policies=("conditional", "eager"), tolerances=[1.0, 2**-4],
                  reps=2, full_reps=2, seed=0)
        serial = tolerance_sweep(space, machine, **kw)
        parallel = tolerance_sweep(space, machine, jobs=3, **kw)
        assert sweep_numbers(serial) == sweep_numbers(parallel)
        assert [g.times for g in serial.ground] == [g.times for g in parallel.ground]

    def test_ground_truth_order_independent(self, space, machine):
        reqs = ground_truth_requests(space, machine, full_reps=2, seed=0)
        forward = Runner().run(reqs)
        backward = Runner().run(list(reversed(reqs)))
        fwd = {r.outputs[0].index: r.outputs[0].times for r in forward}
        bwd = {r.outputs[0].index: r.outputs[0].times for r in backward}
        assert fwd == bwd


# ----------------------------------------------------------------------
# caching
# ----------------------------------------------------------------------
class TestCache:
    def test_hit_returns_identical_result(self, space, machine, tmp_path):
        cache = ResultCache(str(tmp_path))
        runner = Runner(cache=cache)
        req = RunRequest(kind=GROUND_TRUTH, space=space, machine=machine,
                         config_index=0, reps=2)
        cold = runner.run([req])[0]
        warm = runner.run([req])[0]
        assert not cold.cached and warm.cached
        assert warm.outputs[0].times == cold.outputs[0].times
        assert warm.outputs[0].path.exec_time == cold.outputs[0].path.exec_time
        assert cache.stores == 1 and cache.hits == 1

    def test_warm_sweep_runs_zero_simulations(self, space, machine, tmp_path):
        kw = dict(policies=("conditional", "online"), tolerances=[1.0, 2**-4],
                  reps=2, full_reps=2, seed=0)
        cold_runner = make_runner(cache_dir=str(tmp_path))
        cold = tolerance_sweep(space, machine, runner=cold_runner, **kw)
        assert cold_runner.executed() > 0

        warm_runner = make_runner(jobs=2, cache_dir=str(tmp_path))
        warm = tolerance_sweep(space, machine, runner=warm_runner, **kw)
        # the acceptance bar: a repeated sweep with a warm cache performs
        # zero new simulations — ground-truth or selective
        assert warm_runner.executed(GROUND_TRUTH) == 0
        assert warm_runner.executed() == 0
        assert sweep_numbers(warm) == sweep_numbers(cold)

    def test_partial_overlap_reuses_ground_truth(self, space, machine, tmp_path):
        first = make_runner(cache_dir=str(tmp_path))
        tolerance_sweep(space, machine, policies=("conditional",),
                        tolerances=[1.0], reps=2, full_reps=2, seed=0,
                        runner=first)
        # a different (policy, eps) grid over the same space shares truth
        second = make_runner(cache_dir=str(tmp_path))
        tolerance_sweep(space, machine, policies=("online",),
                        tolerances=[2**-4], reps=2, full_reps=2, seed=0,
                        runner=second)
        assert second.executed(GROUND_TRUTH) == 0
        assert second.executed(TUNE_CONFIG) > 0

    def test_machine_change_invalidates(self, space, machine, tmp_path):
        runner = make_runner(cache_dir=str(tmp_path))
        measure_ground_truth(space, machine, full_reps=2, seed=0, runner=runner)
        baseline = runner.executed(GROUND_TRUTH)
        assert baseline == len(space)

        other = dataclasses.replace(machine, seed=machine.seed + 1)
        measure_ground_truth(space, other, full_reps=2, seed=0, runner=runner)
        assert runner.executed(GROUND_TRUTH) == 2 * baseline

        slower = dataclasses.replace(machine, alpha=machine.alpha * 2)
        measure_ground_truth(space, slower, full_reps=2, seed=0, runner=runner)
        assert runner.executed(GROUND_TRUTH) == 3 * baseline

    def test_space_change_invalidates(self, machine, tmp_path):
        runner = make_runner(cache_dir=str(tmp_path))
        a = capital_cholesky_space(n=64, c=2, b0=4, nconf=4)
        measure_ground_truth(a, machine, full_reps=2, seed=0, runner=runner)
        hits_before = runner.cache_hits(GROUND_TRUTH)
        b = capital_cholesky_space(n=128, c=2, b0=4, nconf=4)
        measure_ground_truth(b, machine, full_reps=2, seed=0, runner=runner)
        assert runner.cache_hits(GROUND_TRUTH) == hits_before
        assert runner.executed(GROUND_TRUTH) == 2 * len(a)

    def test_corrupt_entry_is_a_miss(self, space, machine, tmp_path):
        cache = ResultCache(str(tmp_path))
        req = RunRequest(kind=GROUND_TRUTH, space=space, machine=machine,
                         config_index=0, reps=2)
        key = request_key(req)
        Runner(cache=cache).run([req])
        path = tmp_path / f"{key}.json"
        path.write_text("{ not json")
        fresh = ResultCache(str(tmp_path))
        assert fresh.get(key) is None
        assert fresh.misses == 1


# ----------------------------------------------------------------------
# runner bookkeeping
# ----------------------------------------------------------------------
class TestRunner:
    def test_results_align_with_requests(self, space, machine):
        reqs = ground_truth_requests(space, machine, full_reps=1, seed=0)
        results = Runner(executor=ParallelExecutor(jobs=2)).run(reqs)
        assert [r.outputs[0].index for r in results] == list(range(len(space)))

    def test_progress_events(self, space, machine):
        events = []
        runner = Runner(progress=events.append)
        runner.run(ground_truth_requests(space, machine, full_reps=1, seed=0))
        assert len(events) == len(space)
        assert all(not e.cached for e in events)
        assert events[0].total == len(space)
        assert "kind=ground-truth" in events[0].describe()

    def test_progress_monotonic_on_partially_warm_cache(
        self, space, machine, tmp_path
    ):
        reqs = ground_truth_requests(space, machine, full_reps=1, seed=0)
        warmup = make_runner(cache_dir=str(tmp_path))
        warmup.run(reqs[:2])
        events = []
        runner = Runner(cache=warmup.cache, progress=events.append)
        runner.run(reqs)
        # cache hits stream first, fresh executions after — the counter
        # must still read job=1/N .. job=N/N in emission order
        assert [e.index for e in events] == list(range(len(reqs)))
        assert [e.cached for e in events] == [True, True, False, False]

    def test_make_runner_defaults_serial(self):
        assert make_runner().jobs == 1
        assert make_runner(jobs=3).jobs == 3

    def test_sweep_rejects_runner_plus_jobs(self, space, machine):
        with pytest.raises(ValueError):
            tolerance_sweep(space, machine, policies=("online",),
                            tolerances=[1.0], reps=1, full_reps=1,
                            runner=Runner(), jobs=2)
