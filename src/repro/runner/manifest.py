"""Resumable sweep manifests: request keys + completion states on disk.

A sweep is a long many-job campaign; killing it mid-grid must not cost
the completed work.  The content-addressed result cache already makes
completed measurements free to replay — the manifest adds the *plan*:
which request keys the sweep consists of and what state each is in
(``pending`` / ``done`` / ``failed``).

Completion marks are batched: rewriting the whole file per completion
made a 10k-job sweep pay ~10k full-file serializations (O(n²) bytes).
:meth:`SweepManifest.mark` now dirties in memory and flushes every
``flush_every`` marks, and the runner calls :meth:`flush` at every
executor completion boundary.  Each flush is still one atomic,
fsync'd publish (:func:`repro.runner.store.write_atomic`), so the file
on disk is a complete, valid snapshot at all times — a crash loses at
most the in-flight batch of marks, never corrupts the manifest, and
resume stays exact regardless because execution is cache-driven (the
manifest is the progress report and grid identity, not the replay
source).

``repro sweep --resume`` loads the manifest written next to the cache,
reports how much of the grid survived, and re-runs the sweep — the
cache guarantees zero recomputation for ``done`` entries, while
``pending`` and ``failed`` (transiently quarantined) jobs execute.
The manifest file is named after the *grid id*, a hash of the sorted
request keys, so differently-shaped sweeps over one cache directory
never collide and a resume against a changed grid is detected as
"nothing to resume" instead of silently mixing campaigns.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.runner.jobs import RunRequest
from repro.runner.store import write_atomic

__all__ = ["SweepManifest", "ManifestError"]

_STATES = ("pending", "done", "failed")


class ManifestError(RuntimeError):
    """A manifest file is missing, unreadable, or from another grid."""


class SweepManifest:
    """Per-sweep completion ledger, one atomic JSON file."""

    VERSION = 1

    #: marks buffered before an automatic flush; the crash-loss bound
    DEFAULT_FLUSH_EVERY = 64

    def __init__(self, path: str, grid_id: str,
                 entries: Optional[Dict[str, Dict]] = None,
                 flush_every: Optional[int] = None) -> None:
        self.path = str(path)
        self.grid_id = str(grid_id)
        #: request key -> {"state", "kind", "config", "error"}
        self.entries: Dict[str, Dict] = entries if entries is not None else {}
        self.flush_every = int(flush_every if flush_every is not None
                               else self.DEFAULT_FLUSH_EVERY)
        if self.flush_every < 1:
            raise ValueError(
                f"flush_every must be >= 1, got {flush_every}")
        self._dirty = 0

    # ------------------------------------------------------------------
    @staticmethod
    def grid_id_for(keys: Iterable[str]) -> str:
        """Identity of a sweep grid: hash of its sorted request keys."""
        blob = "\n".join(sorted(keys)).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()[:16]

    @staticmethod
    def path_for(directory: str, name: str, grid_id: str) -> str:
        # deliberately NOT ``.json``: the result cache counts/clears
        # ``*.json`` entries and must never touch the manifest
        return os.path.join(directory, f"sweep-{name}-{grid_id}.manifest")

    @classmethod
    def load(cls, path: str) -> "SweepManifest":
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except FileNotFoundError:
            raise ManifestError(f"no sweep manifest at {path}: "
                                f"nothing to resume") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ManifestError(f"unreadable sweep manifest {path}: {exc}")
        if doc.get("version") != cls.VERSION:
            raise ManifestError(
                f"unsupported manifest version {doc.get('version')!r} in {path}")
        return cls(path, doc["grid_id"], entries=doc.get("entries", {}))

    # ------------------------------------------------------------------
    def plan(self, keyed_requests: Sequence[Tuple[str, RunRequest]]) -> None:
        """Register the grid's jobs, preserving already-recorded states."""
        for key, req in keyed_requests:
            self.entries.setdefault(key, {
                "state": "pending",
                "kind": req.kind,
                "config": req.config_index,
                "error": None,
            })

    def mark(self, key: str, state: str, error: Optional[str] = None) -> None:
        """Record a completion state; batched, auto-flushing.

        The mark lands in memory; every ``flush_every`` marks the
        manifest is flushed to disk in one atomic publish.  Call
        :meth:`flush` at completion boundaries (the runner does, after
        every batch — including on the error path) to bound what a
        crash can lose to the in-flight batch.
        """
        if state not in _STATES:
            raise ValueError(f"unknown manifest state {state!r}")
        entry = self.entries.setdefault(
            key, {"state": "pending", "kind": None, "config": None,
                  "error": None})
        entry["state"] = state
        entry["error"] = error
        self._dirty += 1
        if self._dirty >= self.flush_every:
            self.save()

    def flush(self) -> None:
        """Persist any batched marks (no-op when nothing is dirty)."""
        if self._dirty:
            self.save()

    def save(self) -> None:
        """Write the full snapshot: one atomic, fsync'd publish."""
        doc = {"version": self.VERSION, "grid_id": self.grid_id,
               "entries": self.entries}
        write_atomic(self.path, json.dumps(doc).encode("utf-8"))
        self._dirty = 0

    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        out = {s: 0 for s in _STATES}
        for entry in self.entries.values():
            out[entry.get("state", "pending")] = \
                out.get(entry.get("state", "pending"), 0) + 1
        return out

    def incomplete(self) -> List[str]:
        """Keys still owed work (pending or previously failed)."""
        return [k for k, e in self.entries.items() if e.get("state") != "done"]

    def summary(self) -> str:
        c = self.counts()
        total = len(self.entries)
        return (f"manifest {os.path.basename(self.path)}: "
                f"done={c['done']} failed={c['failed']} "
                f"pending={c['pending']} of {total}")

    def __repr__(self) -> str:
        return f"SweepManifest({self.path!r}, grid={self.grid_id}, {self.counts()})"
