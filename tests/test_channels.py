"""Aggregate-channel algebra: inference, composition, coverage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.critter.channels import (
    AggregateRegistry,
    Channel,
    combine_channels,
    infer_channel,
)


class TestInference:
    def test_contiguous_row(self):
        ch = infer_channel([4, 5, 6, 7])
        assert ch == Channel(4, ((1, 4),))
        assert ch.size == 4

    def test_strided_column(self):
        ch = infer_channel([1, 5, 9, 13])
        assert ch == Channel(1, ((4, 4),))

    def test_singleton(self):
        ch = infer_channel([3])
        assert ch == Channel(3, ())
        assert ch.size == 1

    def test_2d_slice(self):
        # a 3x3 plane of a grid: offsets {0,1,2} x {0,16,32}
        ranks = [0, 1, 2, 16, 17, 18, 32, 33, 34]
        ch = infer_channel(ranks)
        assert ch is not None
        assert set(ch.dims) == {(1, 3), (16, 3)}
        assert ch.ranks() == frozenset(ranks)

    def test_non_cartesian_returns_none(self):
        assert infer_channel([0, 1, 3]) is None
        assert infer_channel([0, 1, 2, 4]) is None
        assert infer_channel([0, 1, 4, 5, 8]) is None

    def test_degenerate_cartesian_detected(self):
        # {0,2,3,5} = {0,2} + {0,3}: a legitimate mixed-radix pattern
        ch = infer_channel([0, 2, 3, 5])
        assert ch is not None
        assert ch.ranks() == frozenset({0, 2, 3, 5})

    def test_unsorted_input_ok(self):
        assert infer_channel([7, 5, 6, 4]) == Channel(4, ((1, 4),))

    def test_ranks_roundtrip(self):
        for ranks in ([0, 3, 6, 9], [2, 3, 4, 5], [1, 2, 5, 6]):
            ch = infer_channel(ranks)
            if ch is not None:
                assert ch.ranks() == frozenset(ranks)

    def test_hash_ignores_offset(self):
        a = infer_channel([0, 1, 2, 3])
        b = infer_channel([8, 9, 10, 11])
        assert a.hash_id == b.hash_id
        assert a != b

    def test_hash_distinguishes_stride(self):
        assert infer_channel([0, 1]).hash_id != infer_channel([0, 2]).hash_id


class TestCombination:
    def test_row_and_column_make_plane(self):
        # 4x4 grid (stride 1 rows, stride 4 cols) crossing at rank 0
        row = infer_channel([0, 1, 2, 3])
        col = infer_channel([0, 4, 8, 12])
        plane = combine_channels(row, col)
        assert plane is not None
        assert plane.size == 16
        assert plane.ranks() == frozenset(range(16))

    def test_plane_and_fiber_make_cube(self):
        # 2x2x2 grid: layer {0..3}, fiber {0,4}
        layer = infer_channel([0, 1, 2, 3])
        fiber = infer_channel([0, 4])
        cube = combine_channels(layer, fiber)
        assert cube is not None
        assert cube.ranks() == frozenset(range(8))

    def test_disjoint_channels_do_not_combine(self):
        a = infer_channel([0, 1])
        b = infer_channel([4, 5])
        assert combine_channels(a, b) is None

    def test_overlapping_channels_do_not_combine(self):
        a = infer_channel([0, 1, 2, 3])
        b = infer_channel([2, 3])
        assert combine_channels(a, b) is None

    def test_combination_commutative(self):
        row = infer_channel([0, 1, 2, 3])
        col = infer_channel([0, 4, 8, 12])
        ab = combine_channels(row, col)
        ba = combine_channels(col, row)
        assert ab == ba

    def test_contains(self):
        plane = infer_channel(list(range(16)))
        row = infer_channel([4, 5, 6, 7])
        assert plane.contains(row)
        assert not row.contains(plane)


class TestRegistry:
    def test_world_is_maximal(self):
        reg = AggregateRegistry(8)
        assert reg.world.is_maximal(8)
        assert reg.covers_world(reg.world)

    def test_register_split_records_channel(self):
        reg = AggregateRegistry(4)
        ch = reg.register_split(gid=1, world_ranks=(0, 1))
        assert ch == Channel(0, ((1, 2),))
        assert reg.channel_of(1) == ch

    def test_register_irregular_yields_none(self):
        reg = AggregateRegistry(8)
        assert reg.register_split(gid=2, world_ranks=(0, 1, 3)) is None

    def test_aggregate_built_from_row_and_col(self):
        reg = AggregateRegistry(4)  # 2x2 grid
        row = reg.register_split(1, (0, 1))
        col = reg.register_split(2, (0, 2))
        combined = [a for a in reg.aggregates.values() if a.size == 4]
        assert combined, "row x col aggregate covering the grid expected"

    def test_coverage_grows_to_world(self):
        reg = AggregateRegistry(4)
        row = reg.register_split(1, (0, 1))
        col = reg.register_split(2, (0, 2))
        cov = reg.extend_coverage(None, row)
        assert not reg.covers_world(cov)
        cov = reg.extend_coverage(cov, col)
        assert reg.covers_world(cov)

    def test_coverage_offset_normalization(self):
        # statistics propagated along *different* rows/cols still cover
        # the grid dimensions (channel identity ignores offsets)
        reg = AggregateRegistry(4)
        row1 = reg.register_split(1, (2, 3))   # second row
        col1 = reg.register_split(2, (1, 3))   # second column
        cov = reg.extend_coverage(None, row1)
        cov = reg.extend_coverage(cov, col1)
        assert reg.covers_world(cov)

    def test_redundant_coverage_unchanged(self):
        reg = AggregateRegistry(4)
        row = reg.register_split(1, (0, 1))
        cov = reg.extend_coverage(None, row)
        cov2 = reg.extend_coverage(cov, row)
        assert cov2.size == cov.size

    def test_world_registration(self):
        reg = AggregateRegistry(6)
        ch = reg.register_world(gid=0)
        assert ch.size == 6
        assert reg.channel_of(0) is ch

    def test_3d_grid_coverage(self):
        # 2x2x2 grid: row + col + fiber must cover the cube
        reg = AggregateRegistry(8)
        row = reg.register_split(1, (0, 1))
        col = reg.register_split(2, (0, 2))
        fib = reg.register_split(3, (0, 4))
        cov = None
        for ch in (row, col, fib):
            cov = reg.extend_coverage(cov, ch)
        assert reg.covers_world(cov)


@given(
    offset=st.integers(min_value=0, max_value=64),
    dims=st.lists(
        st.tuples(st.sampled_from([1, 2, 4, 8, 16, 32]),
                  st.integers(min_value=2, max_value=4)),
        min_size=1, max_size=3, unique_by=lambda d: d[0],
    ),
)
@settings(max_examples=120, deadline=None)
def test_property_inference_roundtrip(offset, dims):
    """Any mixed-radix channel must be re-inferred from its rank set."""
    # ensure dims are non-ambiguous: each stride must exceed the span of
    # the previous dimensions (true mixed radix)
    dims = sorted(dims)
    span = 1
    ok_dims = []
    for stride, size in dims:
        if stride < span:
            continue
        ok_dims.append((stride, size))
        span = stride * size
    if not ok_dims:
        return
    ch = Channel(offset, tuple(ok_dims))
    inferred = infer_channel(sorted(ch.ranks()))
    assert inferred is not None
    assert inferred.ranks() == ch.ranks()
