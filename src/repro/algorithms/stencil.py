"""2D stencil halo-exchange workload (bandwidth-bound corner).

A classic iterative 2D stencil (Jacobi-style sweep over an ``nx x ny``
local grid) under a 1D row decomposition: each iteration exchanges one
grid row with each vertical neighbour, applies the stencil to the local
block, and periodically allreduces a residual scalar.

Two halo styles alternate per iteration, built on the same p2p
descriptors the p2p-pipeline workloads exercise:

* **nonblocking** — post both irecvs, then both isends, then waitall
  (the overlap-friendly MPI idiom);
* **red-black blocking** — even ranks send first, odd ranks receive
  first, covering both rendezvous directions without deadlock.

The stencil update is the roofline model's bandwidth-bound corner: a
``points``-point stencil performs ``2 * points`` flops per cell but
streams the whole read/write working set (~24 bytes per cell for the
two grid arrays plus halo traffic), so its arithmetic intensity
(~2.4 bytes/flop at 5 points) sits far above gemm's — under a load
regime with a roofline ceiling (``mem_beta > 0``) it prices off the
memory roof while gemm keeps pricing off the flop roof.
"""

from __future__ import annotations

from typing import Any, Generator, Tuple

from repro.kernels.roofline import register_kernel_model
from repro.kernels.signature import KernelSignature, comp_signature

__all__ = ["stencil2d_spec", "stencil_halo_program"]

Spec = Tuple[KernelSignature, float]

#: p2p tags: direction of travel along the rank line
_TAG_DOWN_NB, _TAG_UP_NB = 1, 2     # nonblocking phase
_TAG_DOWN_BL, _TAG_UP_BL = 3, 4     # red-black blocking phase


def _stencil_flops(points: int, nx: int, ny: int) -> float:
    # one multiply-add per stencil point per cell
    return 2.0 * points * nx * ny


def _stencil_bytes(points: int, nx: int, ny: int) -> float:
    # read the source grid, write the destination grid, plus ~one extra
    # read-equivalent of halo/boundary traffic per sweep
    return 24.0 * nx * ny


def stencil2d_spec(points: int, nx: int, ny: int) -> Spec:
    """A ``points``-point stencil sweep over an nx x ny local block."""
    return comp_signature("stencil2d", points, nx, ny), _stencil_flops(
        points, nx, ny)


register_kernel_model("stencil2d", _stencil_flops, _stencil_bytes)


def stencil_halo_program(
    comm: Any,
    nx: int = 64,
    ny: int = 64,
    iters: int = 4,
    points: int = 5,
    reduce_every: int = 2,
) -> Generator[Any, Any, None]:
    """One rank's program for the iterative 2D stencil.

    1D row decomposition, non-periodic: rank ``r`` exchanges one
    ``ny``-wide grid row (8 bytes/cell) with ranks ``r-1``/``r+1``
    where they exist.  Iterations alternate nonblocking and red-black
    blocking halos; every ``reduce_every``-th iteration ends with a
    residual allreduce.
    """
    me, p = comm.rank, comm.size
    up = me - 1 if me > 0 else None
    dn = me + 1 if me < p - 1 else None
    row = 8 * ny
    interior = comm.compute(stencil2d_spec(points, nx, ny))
    for it in range(iters):
        if it % 2 == 0:
            # nonblocking halo: receives posted before sends
            reqs = []
            if up is not None:
                reqs.append((yield comm.irecv(
                    source=up, tag=_TAG_DOWN_NB, nbytes=row)))
            if dn is not None:
                reqs.append((yield comm.irecv(
                    source=dn, tag=_TAG_UP_NB, nbytes=row)))
            if up is not None:
                reqs.append((yield comm.isend(
                    dest=up, tag=_TAG_UP_NB, nbytes=row)))
            if dn is not None:
                reqs.append((yield comm.isend(
                    dest=dn, tag=_TAG_DOWN_NB, nbytes=row)))
            yield comm.waitall(reqs)
        else:
            # red-black blocking halo: even ranks send first
            if me % 2 == 0:
                if dn is not None:
                    yield comm.send(dest=dn, tag=_TAG_DOWN_BL, nbytes=row)
                    yield comm.recv(source=dn, tag=_TAG_UP_BL, nbytes=row)
                if up is not None:
                    yield comm.send(dest=up, tag=_TAG_UP_BL, nbytes=row)
                    yield comm.recv(source=up, tag=_TAG_DOWN_BL, nbytes=row)
            else:
                if up is not None:
                    yield comm.recv(source=up, tag=_TAG_DOWN_BL, nbytes=row)
                    yield comm.send(dest=up, tag=_TAG_UP_BL, nbytes=row)
                if dn is not None:
                    yield comm.recv(source=dn, tag=_TAG_UP_BL, nbytes=row)
                    yield comm.send(dest=dn, tag=_TAG_DOWN_BL, nbytes=row)
        yield interior
        if (it + 1) % reduce_every == 0:
            yield comm.allreduce(nbytes=8)
