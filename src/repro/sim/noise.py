"""Deterministic performance-noise model.

Kernel timings in the simulator are random variables, exactly as the
paper assumes ("a metric measurement of each kernel's execution time
follows a distribution with finite mean and variance").  Three effects
are modeled, each with its own deterministic RNG stream:

1. **Per-signature efficiency bias** — a multiplicative lognormal factor
   drawn once per (machine seed, kernel signature).  It models the
   architecture-specific efficiency of a routine at a given input size
   (cache effects, vectorization efficiency, network topology fit) that
   analytic flop/byte counts cannot capture.  Because the bias depends
   on the signature, configurations with different block sizes really
   do have different — and a-priori unknown — true costs, which is what
   makes autotuning necessary (Section I).

2. **Per-invocation noise** — a lognormal multiplier with unit mean and
   configurable coefficient of variation (separately for computation
   and communication kernels; communication on a shared fat-tree is far
   noisier).  This is what Critter's confidence intervals must average
   away.

3. **Per-run drift** — a small lognormal factor drawn once per
   (run seed, signature) modeling slow environment changes between
   benchmark runs (Stampede2 "does not allocate a contiguous set of
   nodes [so] variability in execution time is observed to be high",
   Section VI.A).  It bounds achievable prediction accuracy from below,
   as in the paper's noisiest experiments.

All draws use ``numpy`` PCG64 generators seeded from stable hashes, so
every experiment is bit-reproducible.  Per-signature biases and per-run
drifts are memoized — they are *defined* to be deterministic functions
of (seed, signature), so caching changes nothing observable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.kernels.signature import KernelSignature, stable_hash

__all__ = ["NoiseModel"]


def _lognormal_params(cv: float) -> tuple[float, float]:
    """(mu, sigma) of a unit-mean lognormal with coefficient of variation cv."""
    sigma2 = math.log1p(cv * cv)
    return -0.5 * sigma2, math.sqrt(sigma2)


@dataclass(slots=True)
class NoiseModel:
    """Noise process for kernel timings.

    Parameters
    ----------
    bias_sigma:
        Log-std-dev of the per-signature efficiency bias.  0 disables.
    comp_cv, comm_cv:
        Coefficient of variation of per-invocation noise for
        computation / communication kernels.
    run_cv:
        Coefficient of variation of the per-run drift factor.
    machine_seed:
        Mixed into per-signature bias draws (machine identity).
    regime:
        Load-regime identity (see
        :class:`~repro.sim.machine.LoadRegime`).  Non-default regimes
        salt the per-signature bias and per-run drift streams, so the
        same machine under a different ambient load draws *different*
        (but still deterministic) efficiency biases — memoized results
        never alias across regimes.  ``"default"`` uses a zero salt,
        leaving every stream byte-identical to the pre-regime model.
    """

    bias_sigma: float = 0.3
    comp_cv: float = 0.08
    comm_cv: float = 0.2
    run_cv: float = 0.01
    machine_seed: int = 0
    regime: str = "default"

    _bias_cache: dict = None       # type: ignore[assignment]
    _drift_cache: dict = None      # type: ignore[assignment]
    _comp_params: tuple = None     # type: ignore[assignment]
    _comm_params: tuple = None     # type: ignore[assignment]
    _bias_salt: int = 0

    def __post_init__(self) -> None:
        self._bias_cache = {}
        self._drift_cache = {}
        self._comp_params = _lognormal_params(self.comp_cv) if self.comp_cv > 0 else None
        self._comm_params = _lognormal_params(self.comm_cv) if self.comm_cv > 0 else None
        # zero salt for the default regime keeps the bias/drift streams
        # byte-identical to the pre-regime model (golden fixtures pin it)
        self._bias_salt = (
            0 if self.regime == "default"
            else stable_hash(("regime", self.regime))
        )

    # ------------------------------------------------------------------
    def signature_bias(self, sig: KernelSignature) -> float:
        """Deterministic efficiency multiplier for a kernel signature."""
        if self.bias_sigma <= 0.0:
            return 1.0
        key = sig.stable_hash() ^ self._bias_salt
        cached = self._bias_cache.get(key)
        if cached is not None:
            return cached
        rng = np.random.Generator(
            # repro: allow[seed-derivation] -- bit-exact stream predates derive_seed; golden noise fixtures pin it
            np.random.PCG64(((self.machine_seed & 0xFFFFFFFF) << 32) | key)
        )
        # exp(N(0, sigma)) normalized to unit mean so costs stay centered
        bias = float(np.exp(rng.normal(0.0, self.bias_sigma) - 0.5 * self.bias_sigma**2))
        self._bias_cache[key] = bias
        return bias

    def run_drift(self, sig: KernelSignature, run_seed: int) -> float:
        """Per-run systematic multiplier (environment drift between runs)."""
        if self.run_cv <= 0.0:
            return 1.0
        key = (sig, run_seed)
        cached = self._drift_cache.get(key)
        if cached is not None:
            return cached
        rng = np.random.Generator(
            np.random.PCG64(
                # repro: allow[seed-derivation] -- bit-exact stream predates derive_seed; golden noise fixtures pin it
                ((run_seed & 0xFFFFFFFF) << 32)
                | (sig.stable_hash() ^ 0x5BD1E995 ^ self._bias_salt)
            )
        )
        mu, s = _lognormal_params(self.run_cv)
        drift = float(np.exp(mu + s * rng.standard_normal()))
        self._drift_cache[key] = drift
        return drift

    def invocation_cv(self, sig: KernelSignature) -> float:
        return self.comm_cv if sig.is_comm else self.comp_cv

    def true_mean(self, sig: KernelSignature, base_cost: float) -> float:
        """The kernel's true (but a-priori unknown) mean execution time."""
        return base_cost * self.signature_bias(sig)

    def sample(
        self,
        sig: KernelSignature,
        base_cost: float,
        rng: np.random.Generator,
        run_seed: int = 0,
    ) -> float:
        """Draw one observed execution time for a kernel invocation."""
        mean = self.true_mean(sig, base_cost) * self.run_drift(sig, run_seed)
        params = self._comm_params if sig.kind == "comm" else self._comp_params
        if params is None:
            return mean
        mu, s = params
        return mean * math.exp(mu + s * rng.standard_normal())

    def factors(self, sig: KernelSignature, run_seed: int) -> tuple:
        """``(bias, drift, lognormal_params)`` for the engine's hot loop.

        The engine caches this triple per (signature, run) and inlines
        :meth:`sample` as ``base * bias * drift * exp(mu + s * N(0,1))``
        — the identical sequence of float operations, so the cached
        path is bit-for-bit equal to calling :meth:`sample`, minus the
        memoization lookups.  ``lognormal_params`` is ``None`` when
        per-invocation noise is disabled (no RNG draw happens at all —
        preserving draw-order identity for zero-CV noise models).
        """
        return (
            self.signature_bias(sig),
            self.run_drift(sig, run_seed),
            self._comm_params if sig.kind == "comm" else self._comp_params,
        )

    def quiet(self) -> "NoiseModel":
        """A copy with all randomness disabled (for deterministic tests)."""
        return NoiseModel(
            bias_sigma=0.0,
            comp_cv=0.0,
            comm_cv=0.0,
            run_cv=0.0,
            machine_seed=self.machine_seed,
            regime=self.regime,
        )
