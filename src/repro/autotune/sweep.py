"""Tolerance sweeps: the experiment grids behind Figures 4 and 5.

A sweep runs the exhaustive tuner for every (policy, tolerance) pair,
reusing one set of ground-truth full executions across all points (the
truth does not depend on the selective method).  The result object
exposes the exact series the paper plots:

* search time vs. log2(eps) per policy        (Figs. 4a/4b, 5a/5b)
* max-rank kernel time vs. log2(eps)          (Figs. 4c, 5c)
* mean log2 prediction error vs. log2(eps)    (Figs. 4d-f, 5d-f)
* per-configuration error at selected eps     (Figs. 4g/4h, 5g/5h)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.autotune.configspace import ConfigSpace
from repro.autotune.tuner import (
    ExhaustiveTuner,
    GroundTruth,
    TuningResult,
    default_machine,
    measure_ground_truth,
)
from repro.sim.machine import Machine

__all__ = ["SweepResult", "tolerance_sweep", "default_tolerances"]


def default_tolerances(lo_exp: int = -10, hi_exp: int = 0) -> List[float]:
    """The paper's tolerance axis: eps = 2^0 .. 2^-10."""
    return [2.0**e for e in range(hi_exp, lo_exp - 1, -1)]


@dataclass(slots=True)
class SweepResult:
    """All tuning results of one space's (policy x tolerance) grid."""

    space_name: str
    policies: List[str]
    tolerances: List[float]
    reps: int
    points: Dict[Tuple[str, float], TuningResult] = field(default_factory=dict)
    ground: List[GroundTruth] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def full_search_time(self) -> float:
        """The red full-execution reference line."""
        return sum(g.mean_time * self.reps for g in self.ground)

    @property
    def full_kernel_time(self) -> float:
        return sum(g.max_rank_kernel_time * self.reps for g in self.ground)

    @property
    def full_comp_kernel_time(self) -> float:
        return sum(g.max_rank_comp_time * self.reps for g in self.ground)

    def result(self, policy: str, eps: float) -> TuningResult:
        return self.points[(policy, eps)]

    def series(self, policy: str, metric: str) -> List[float]:
        """Metric values across the tolerance axis for one policy."""
        out = []
        for eps in self.tolerances:
            res = self.points[(policy, eps)]
            out.append(getattr(res, metric))
        return out

    def per_config_errors(self, policy: str, eps: float,
                          metric: str = "exec_error") -> List[float]:
        res = self.points[(policy, eps)]
        return [getattr(o, metric) for o in res.outcomes]

    def log2_tolerances(self) -> List[float]:
        return [math.log2(e) for e in self.tolerances]


def tolerance_sweep(
    space: ConfigSpace,
    machine: Optional[Machine] = None,
    policies: Sequence[str] = ("conditional", "local", "online", "apriori"),
    tolerances: Optional[Sequence[float]] = None,
    reps: int = 5,
    full_reps: int = 3,
    seed: int = 0,
    progress: bool = False,
) -> SweepResult:
    """Run the full (policy x tolerance) grid for one space."""
    machine = machine or default_machine(space, seed)
    tolerances = list(tolerances if tolerances is not None else default_tolerances())
    ground = measure_ground_truth(space, machine, full_reps, seed)
    sweep = SweepResult(
        space_name=space.name,
        policies=list(policies),
        tolerances=tolerances,
        reps=reps,
        ground=ground,
    )
    for policy in policies:
        for eps in tolerances:
            tuner = ExhaustiveTuner(
                space, machine, policy=policy, eps=eps, reps=reps,
                full_reps=full_reps, seed=seed, ground_truth=ground,
            )
            sweep.points[(policy, eps)] = tuner.run()
            if progress:
                r = sweep.points[(policy, eps)]
                print(
                    f"  {space.name} {policy:12s} eps=2^{math.log2(eps):+.0f} "
                    f"search={r.search_time:.4f}s speedup={r.search_speedup:.2f}x "
                    f"err=2^{r.mean_log2_exec_error:+.1f}"
                )
    return sweep
