"""SLATE tiled Cholesky: numeric correctness, lookahead, message flow."""

import numpy as np
import pytest

from repro.algorithms import verify
from repro.algorithms.slate_cholesky import SlateCholeskyConfig, slate_cholesky
from repro.critter import Critter
from repro.sim import Machine, NoiseModel, Simulator, TraceRecorder


def run_numeric(n, nb, pr=2, pc=2, lookahead=0, seed=2):
    cfg = SlateCholeskyConfig(n=n, nb=nb, pr=pr, pc=pc, lookahead=lookahead)
    a = verify.random_spd(n, seed=seed)
    m = Machine(nprocs=cfg.nprocs, seed=0)
    res = Simulator(m).run(slate_cholesky, args=(cfg, a), run_seed=1)
    return res, cfg, a


class TestNumericCorrectness:
    @pytest.mark.parametrize("lookahead", [0, 1, 2])
    def test_lookahead_depths(self, lookahead):
        res, cfg, a = run_numeric(64, 16, lookahead=lookahead)
        verify.check_slate_cholesky(res.returns, cfg, a)

    @pytest.mark.parametrize("n,nb", [(64, 8), (64, 32), (48, 16)])
    def test_tile_sizes(self, n, nb):
        res, cfg, a = run_numeric(n, nb)
        verify.check_slate_cholesky(res.returns, cfg, a)

    def test_ragged_last_tile(self):
        res, cfg, a = run_numeric(60, 16)
        verify.check_slate_cholesky(res.returns, cfg, a)

    def test_rectangular_grid(self):
        res, cfg, a = run_numeric(64, 8, pr=4, pc=1)
        verify.check_slate_cholesky(res.returns, cfg, a)
        res, cfg, a = run_numeric(64, 8, pr=1, pc=4)
        verify.check_slate_cholesky(res.returns, cfg, a)

    def test_single_tile(self):
        res, cfg, a = run_numeric(16, 16, pr=1, pc=1)
        verify.check_slate_cholesky(res.returns, cfg, a)

    def test_lookahead_same_result(self):
        r0, cfg0, a = run_numeric(64, 16, lookahead=0, seed=9)
        r1, cfg1, _ = run_numeric(64, 16, lookahead=1, seed=9)
        l0 = verify.assemble_tiles(r0.returns, 64, 64, 16)
        l1 = verify.assemble_tiles(r1.returns, 64, 64, 16)
        assert np.allclose(np.tril(l0), np.tril(l1))


class TestSchedule:
    def _trace(self, lookahead, nb=16, n=128):
        cfg = SlateCholeskyConfig(n=n, nb=nb, pr=2, pc=2, lookahead=lookahead)
        m = Machine(nprocs=4, seed=0)
        tr = TraceRecorder()
        cr = Critter(policy="never-skip")
        sim = Simulator(m, noise=NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0),
                        profiler=cr, trace=tr)
        res = sim.run(slate_cholesky, args=(cfg,))
        return res, tr, cr.last_report

    def test_only_p2p_communication(self):
        _, tr, _ = self._trace(0)
        assert len(tr.by_kind("coll")) == 0  # SLATE is task-based: no collectives
        assert len(tr.by_kind("p2p")) > 0

    def test_kernel_mix(self):
        _, tr, _ = self._trace(1)
        names = {e.sig.name for e in tr.by_kind("comp")}
        assert names == {"potrf", "trsm", "syrk", "gemm"}

    def test_kernel_counts(self):
        # T=8 tiles: potrf per panel, trsm per (i>k), syrk per diag update
        _, tr, _ = self._trace(0)
        hist = {}
        for e in tr.by_kind("comp"):
            hist[e.sig.name] = hist.get(e.sig.name, 0) + 1
        t = 8
        assert hist["potrf"] == t
        assert hist["trsm"] == t * (t - 1) // 2
        assert hist["syrk"] == t * (t - 1) // 2

    def test_lookahead_shortens_critical_path(self):
        r0, _, _ = self._trace(0)
        r1, _, _ = self._trace(1)
        assert r1.makespan < r0.makespan

    def test_smaller_tiles_more_messages(self):
        cfgs = []
        for nb in (16, 32):
            cfg = SlateCholeskyConfig(n=128, nb=nb, pr=2, pc=2, lookahead=0)
            tr = TraceRecorder()
            m = Machine(nprocs=4, seed=0)
            Simulator(m, trace=tr).run(slate_cholesky, args=(cfg,))
            cfgs.append(len(tr.by_kind("p2p")))
        assert cfgs[0] > cfgs[1]

    def test_selective_execution_preserves_numerics(self):
        # with execute_skipped_fns=True, Critter may skip timing but the
        # data remains valid
        cfg = SlateCholeskyConfig(n=64, nb=16, pr=2, pc=2, lookahead=0)
        a = verify.random_spd(64, seed=4)
        m = Machine(nprocs=4, seed=0)
        cr = Critter(policy="conditional", eps=0.5)
        res = None
        for rep in range(3):
            res = Simulator(m, profiler=cr, execute_skipped_fns=True).run(
                slate_cholesky, args=(cfg, a), run_seed=rep
            )
        assert cr.last_report.skipped_kernels > 0
        verify.check_slate_cholesky(res.returns, cfg, a)
