"""Content-addressed disk cache for job results.

Every :class:`~repro.runner.jobs.RunRequest` hashes to a key derived
from everything its result depends on — configuration space structure,
machine and noise parameters, policy, tolerance, repetitions, and seed
(see :func:`~repro.runner.jobs.request_fingerprint`).  Results are
stored one JSON file per key, so

* re-running a sweep reuses every ground-truth and selective
  measurement at zero cost (measurement reuse across tuning
  experiments, in the spirit of transfer-learning autotuners),
* any change to the machine, space, or protocol changes the key and
  transparently invalidates the entry,
* the cache is safe to share between concurrent processes: writes are
  atomic (temp file + rename) and entries are immutable.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

from repro.runner.jobs import RunResult, result_from_dict, result_to_dict

__all__ = ["ResultCache"]


class ResultCache:
    """One-file-per-result JSON store keyed by request content hash."""

    def __init__(self, directory: str) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def get(self, key: str) -> Optional[RunResult]:
        """Return the cached result for ``key``, or None on a miss."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as f:
                payload = json.load(f)
        except (FileNotFoundError, json.JSONDecodeError):
            self.misses += 1
            return None
        try:
            result = result_from_dict(payload["result"])
        except (KeyError, ValueError, TypeError):
            # unreadable or stale-format entry: treat as a miss
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult,
            fingerprint: Optional[dict] = None) -> None:
        """Store a result atomically; the fingerprint aids debugging."""
        payload = {"key": key, "result": result_to_dict(result)}
        if fingerprint is not None:
            payload["fingerprint"] = fingerprint
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(payload, f)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory)
                   if name.endswith(".json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for name in os.listdir(self.directory):
            if name.endswith(".json"):
                try:
                    os.unlink(os.path.join(self.directory, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:
        return (f"ResultCache({self.directory!r}, hits={self.hits}, "
                f"misses={self.misses}, stores={self.stores})")
