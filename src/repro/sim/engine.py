"""Discrete-event engine: rank coroutines, matching, rendezvous, timing.

The engine advances one virtual clock per rank.  Rank programs are
generators; every yielded op descriptor is translated into simulated
time using the :class:`~repro.sim.machine.Machine` cost model, the
:class:`~repro.sim.noise.NoiseModel`, and the attached
:class:`~repro.sim.profiler.Profiler` (whose decisions implement
selective execution).

Timing semantics (all hooks receive exact arrival times):

* ``compute``   — local; charges the sampled kernel time (or the skip
  overhead when the profiler elides execution).
* collectives   — synchronous rendezvous: all participants complete at
  ``max(arrivals) + intercept + cost``; per-rank idle time is
  ``max(arrivals) - arrival``.
* blocking p2p  — rendezvous of the two endpoints, completing at
  ``max(post times) + intercept + cost``.
* ``isend``     — buffered: the sender continues immediately (paying
  only local interception cost); the transfer completes the matching
  request at ``max(post times) + intercept + cost``.
* ``wait``      — resumes at ``max(now, request completions)``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.signature import KernelSignature, comm_signature
from repro.sim.comm import Comm
from repro.sim.machine import Machine
from repro.sim.noise import NoiseModel
from repro.sim.ops import CollOp, ComputeOp, P2POp, Request, SplitOp, WaitOp
from repro.sim.profiler import NullProfiler, Profiler
from repro.sim.trace import TraceRecorder

__all__ = ["Simulator", "SimResult", "CommGroup", "P2PRecord", "DeadlockError"]


class DeadlockError(RuntimeError):
    """Raised when no rank can make progress but some have not finished."""


class CommGroup:
    """Engine-side state shared by all members of a communicator."""

    __slots__ = ("gid", "world_ranks", "sorted_ranks", "stride", "parent",
                 "coll_counts", "pending")

    def __init__(self, gid: int, world_ranks: Tuple[int, ...],
                 parent: Optional["CommGroup"] = None) -> None:
        self.gid = gid
        self.world_ranks = world_ranks
        self.sorted_ranks = tuple(sorted(world_ranks))
        self.parent = parent
        # per-member collective sequence counters (world rank -> count)
        self.coll_counts: Dict[int, int] = {r: 0 for r in world_ranks}
        # seq -> _CollPending
        self.pending: Dict[int, "_CollPending"] = {}
        self.stride = self._compute_stride()

    def _compute_stride(self) -> int:
        rs = self.sorted_ranks
        if len(rs) < 2:
            return 0
        return min(b - a for a, b in zip(rs, rs[1:]))

    @property
    def size(self) -> int:
        return len(self.world_ranks)

    def __repr__(self) -> str:
        return f"CommGroup(gid={self.gid}, size={self.size}, stride={self.stride})"


class _CollPending:
    """A collective (or split) waiting for all participants."""

    __slots__ = ("name", "entries")

    def __init__(self, name: str) -> None:
        self.name = name
        self.entries: Dict[int, Tuple[float, Any]] = {}  # world rank -> (time, op)


@dataclass(slots=True)
class P2PRecord:
    """Engine/profiler-shared record of one posted p2p endpoint."""

    kind: str  # send | isend | recv | irecv
    world_rank: int
    comm_rank: int
    peer_world: int
    tag: int
    nbytes: int
    post_time: float
    group: CommGroup
    payload: Any = None
    blocking: bool = True
    request: Optional[Request] = None
    snapshot: Any = None  # filled by profilers (path state at post time)


class _RankState:
    __slots__ = ("rank", "gen", "time", "rng", "finished", "retval", "waiting",
                 "park_reason")

    def __init__(self, rank: int, gen: Any, rng: np.random.Generator) -> None:
        self.rank = rank
        self.gen = gen
        self.time = 0.0
        self.rng = rng
        self.finished = False
        self.retval: Any = None
        # (wait_posted_time, [requests], mode) when parked in a wait
        self.waiting: Optional[Tuple[float, List[Request], str]] = None
        self.park_reason: Optional[str] = None


@dataclass(slots=True)
class SimResult:
    """Outcome of one simulated run."""

    makespan: float
    rank_times: List[float]
    returns: List[Any]
    run_seed: int

    @property
    def nprocs(self) -> int:
        return len(self.rank_times)


class Simulator:
    """Drives rank programs over a simulated machine.

    Parameters
    ----------
    machine:
        Cost model (also fixes the number of ranks).
    noise:
        Timing noise process; defaults to :class:`NoiseModel` with the
        machine's seed.
    profiler:
        Interposition tool (Critter or the default NullProfiler).
    execute_skipped_fns:
        When True, numeric callbacks of *skipped* kernels still run (so
        data stays valid in data-carrying experiments); the charged time
        is still only the skip overhead, matching the tool's economics.
    trace:
        Optional :class:`TraceRecorder` capturing every event.
    """

    def __init__(
        self,
        machine: Machine,
        noise: Optional[NoiseModel] = None,
        profiler: Optional[Profiler] = None,
        *,
        execute_skipped_fns: bool = False,
        trace: Optional[TraceRecorder] = None,
    ) -> None:
        self.machine = machine
        self.noise = noise if noise is not None else NoiseModel(machine_seed=machine.seed)
        self.profiler = profiler if profiler is not None else NullProfiler()
        self.execute_skipped_fns = execute_skipped_fns
        self.trace = trace
        self.run_seed = 0
        # run state
        self._states: List[_RankState] = []
        self._heap: List[Tuple[float, int, int, Any]] = []
        self._seq = 0
        self._next_gid = 0
        self._groups: Dict[int, CommGroup] = {}
        self._p2p_sends: Dict[Tuple[int, int, int, int], List[P2PRecord]] = {}
        self._p2p_recvs: Dict[Tuple[int, int, int, int], List[P2PRecord]] = {}
        self.world: Optional[CommGroup] = None

    # ------------------------------------------------------------------
    def run(
        self,
        program: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        rank_args: Optional[Sequence[Tuple[Any, ...]]] = None,
        run_seed: int = 0,
    ) -> SimResult:
        """Execute ``program(comm, *args)`` SPMD on all ranks.

        ``rank_args`` optionally supplies per-rank extra positional
        arguments (appended after ``args``).
        """
        p = self.machine.nprocs
        self.run_seed = int(run_seed)
        self._states = []
        self._heap = []
        self._seq = 0
        self._next_gid = 0
        self._groups = {}
        self._p2p_sends = {}
        self._p2p_recvs = {}

        self.world = self._make_group(tuple(range(p)), parent=None)
        self.profiler.start_run(self, self.run_seed)
        self.profiler.on_world(self.world)

        for r in range(p):
            rng = np.random.Generator(np.random.PCG64(((self.run_seed & 0xFFFFFF) << 24) ^ (r + 1)))
            extra = tuple(rank_args[r]) if rank_args is not None else ()
            gen = program(Comm(self.world, r), *args, *extra)
            self._states.append(_RankState(r, gen, rng))
            self._push(0.0, r, None)

        while self._heap:
            t, _, r, value = heapq.heappop(self._heap)
            st = self._states[r]
            st.time = t
            try:
                op = st.gen.send(value)
            except StopIteration as stop:
                st.finished = True
                st.retval = stop.value
                continue
            self._dispatch(st, op)

        unfinished = [s.rank for s in self._states if not s.finished]
        if unfinished:
            details = "; ".join(
                f"rank {s.rank}: {s.park_reason or 'blocked'}"
                for s in self._states
                if not s.finished
            )
            raise DeadlockError(f"deadlock — unfinished ranks {unfinished}: {details}")

        rank_times = [s.time for s in self._states]
        makespan = max(rank_times)
        self.profiler.end_run(self, makespan)
        return SimResult(
            makespan=makespan,
            rank_times=rank_times,
            returns=[s.retval for s in self._states],
            run_seed=self.run_seed,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _push(self, time: float, rank: int, value: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, rank, value))

    def _make_group(self, world_ranks: Tuple[int, ...],
                    parent: Optional[CommGroup]) -> CommGroup:
        g = CommGroup(self._next_gid, world_ranks, parent)
        self._next_gid += 1
        self._groups[g.gid] = g
        return g

    def _dispatch(self, st: _RankState, op: Any) -> None:
        if isinstance(op, ComputeOp):
            self._do_compute(st, op)
        elif isinstance(op, P2POp):
            self._do_p2p(st, op)
        elif isinstance(op, CollOp):
            self._do_collective(st, op)
        elif isinstance(op, SplitOp):
            self._do_split(st, op)
        elif isinstance(op, WaitOp):
            self._do_wait(st, op)
        else:
            raise TypeError(f"rank {st.rank} yielded unknown op {op!r}")

    # -- compute ---------------------------------------------------------
    def _do_compute(self, st: _RankState, op: ComputeOp) -> None:
        prof = self.profiler
        execute = prof.on_compute(st.rank, op.sig, op.flops)
        result = None
        if execute:
            base = self.machine.compute_cost(op.flops)
            elapsed = self.noise.sample(op.sig, base, st.rng, self.run_seed)
            if op.fn is not None:
                result = op.fn(*op.args)
        else:
            elapsed = self.machine.skip_overhead
            if op.fn is not None and self.execute_skipped_fns:
                result = op.fn(*op.args)
        prof.post_compute(st.rank, op.sig, execute, elapsed, op.flops)
        if self.trace is not None:
            self.trace.record("comp", (st.rank,), op.sig, st.time, elapsed, execute)
        self._push(st.time + elapsed, st.rank, result)

    # -- point-to-point ----------------------------------------------------
    def _do_p2p(self, st: _RankState, op: P2POp) -> None:
        group: CommGroup = op.comm.group
        me_world = group.world_ranks[op.comm.rank]
        peer_world = group.world_ranks[op.peer]
        rec = P2PRecord(
            kind=op.kind,
            world_rank=me_world,
            comm_rank=op.comm.rank,
            peer_world=peer_world,
            tag=op.tag,
            nbytes=op.nbytes,
            post_time=st.time,
            group=group,
            payload=op.payload,
            blocking=op.kind in ("send", "recv"),
        )
        prof = self.profiler
        prof.on_p2p_post(rec)
        if op.kind in ("isend", "irecv"):
            req = Request(rank=st.rank, kind=op.kind, record=rec)
            rec.request = req
            # buffered post: local interception bookkeeping only
            self._push(st.time + prof.intercept_cost(1), st.rank, req)
        else:
            st.park_reason = f"blocking {op.kind} peer={peer_world} tag={op.tag}"

        if op.kind in ("send", "isend"):
            key = (group.gid, me_world, peer_world, op.tag)
            queue = self._p2p_recvs.get(key)
            if queue:
                self._match_p2p(rec, queue.pop(0))
            else:
                self._p2p_sends.setdefault(key, []).append(rec)
        else:
            key = (group.gid, peer_world, me_world, op.tag)
            queue = self._p2p_sends.get(key)
            if queue:
                self._match_p2p(queue.pop(0), rec)
            else:
                self._p2p_recvs.setdefault(key, []).append(rec)

    def _match_p2p(self, send: P2PRecord, recv: P2PRecord) -> None:
        prof = self.profiler
        stride = abs(send.world_rank - recv.world_rank) or 1
        sig = comm_signature("p2p", send.nbytes, 2, stride)
        execute = prof.on_p2p(sig, send, recv)
        if execute:
            base = self.machine.comm_cost(sig)
            rng = self._states[recv.world_rank].rng
            cost = self.noise.sample(sig, base, rng, self.run_seed)
        else:
            cost = 0.0
        start = max(send.post_time, recv.post_time)
        completion = start + prof.intercept_cost(2) + cost
        prof.post_p2p(sig, send, recv, execute, cost, completion)
        if self.trace is not None:
            self.trace.record(
                "p2p", (send.world_rank, recv.world_rank), sig, start, cost, execute
            )
        # sender side
        if send.kind == "send":
            self._states[send.world_rank].park_reason = None
            self._push(completion, send.world_rank, None)
        else:
            self._complete_request(send.request, completion, None)
        # receiver side
        if recv.kind == "recv":
            self._states[recv.world_rank].park_reason = None
            self._push(completion, recv.world_rank, send.payload)
        else:
            recv.request.value = send.payload
            self._complete_request(recv.request, completion, send.payload)

    def _complete_request(self, req: Request, completion: float, value: Any) -> None:
        req.done = True
        req.completion = completion
        if req.kind == "irecv":
            req.value = value
        st = self._states[req.rank]
        self.profiler.on_wait(req.rank, req, completion)
        if st.waiting is not None:
            self._check_wait(st)

    def _do_wait(self, st: _RankState, op: WaitOp) -> None:
        st.waiting = (st.time, list(op.requests), op.mode)
        st.park_reason = f"wait on {len(op.requests)} request(s)"
        self._check_wait(st)

    def _check_wait(self, st: _RankState) -> None:
        posted, reqs, mode = st.waiting
        if not all(r.done for r in reqs):
            return
        st.waiting = None
        st.park_reason = None
        resume = max([posted] + [r.completion for r in reqs])
        if mode == "one":
            value = reqs[0].value
        else:
            value = [r.value for r in reqs]
        self._push(resume, st.rank, value)

    # -- collectives --------------------------------------------------------
    def _do_collective(self, st: _RankState, op: CollOp) -> None:
        group: CommGroup = op.comm.group
        me_world = group.world_ranks[op.comm.rank]
        seq = group.coll_counts[me_world]
        group.coll_counts[me_world] = seq + 1
        pend = group.pending.get(seq)
        if pend is None:
            pend = _CollPending(op.name)
            group.pending[seq] = pend
        elif pend.name != op.name:
            raise RuntimeError(
                f"collective mismatch on comm {group.gid} seq {seq}: "
                f"{pend.name} vs {op.name} (rank {me_world})"
            )
        pend.entries[me_world] = (st.time, op)
        st.park_reason = f"collective {op.name} on comm {group.gid} seq {seq}"
        if len(pend.entries) == group.size:
            del group.pending[seq]
            self._finish_collective(group, pend)

    def _finish_collective(self, group: CommGroup, pend: _CollPending) -> None:
        prof = self.profiler
        entries = pend.entries
        name = pend.name
        nbytes = max(e[1].nbytes for e in entries.values())
        root = next(iter(entries.values()))[1].root
        sig = comm_signature(name, nbytes, group.size, max(group.stride, 1))
        arrivals = {wr: e[0] for wr, e in entries.items()}
        execute = prof.on_collective(group, sig, root, arrivals)
        if execute:
            base = self.machine.comm_cost(sig)
            rng = self._states[min(group.world_ranks)].rng
            cost = self.noise.sample(sig, base, rng, self.run_seed)
        else:
            cost = 0.0
        start = max(arrivals.values())
        completion = start + prof.intercept_cost(group.size) + cost
        prof.post_collective(group, sig, arrivals, execute, cost, completion)
        if self.trace is not None:
            self.trace.record(
                "coll", tuple(sorted(arrivals)), sig, start, cost, execute
            )
        results = self._collective_results(group, name, entries, root)
        for wr in group.world_ranks:
            self._states[wr].park_reason = None
            self._push(completion, wr, results[wr])

    @staticmethod
    def _reduce_payloads(payloads: List[Any]) -> Any:
        vals = [p for p in payloads if p is not None]
        if not vals:
            return None
        acc = vals[0]
        if isinstance(acc, np.ndarray):
            acc = acc.copy()
        for v in vals[1:]:
            acc = acc + v
        return acc

    def _collective_results(
        self,
        group: CommGroup,
        name: str,
        entries: Dict[int, Tuple[float, CollOp]],
        root: int,
    ) -> Dict[int, Any]:
        wr_by_comm_rank = group.world_ranks
        root_world = wr_by_comm_rank[root]
        ordered = [entries[wr][1].payload for wr in wr_by_comm_rank]
        out: Dict[int, Any] = {}
        # symbolic fast path: no data rides the collective
        if name != "allgather" and all(p is None for p in ordered):
            return dict.fromkeys(wr_by_comm_rank)
        if name == "bcast":
            val = entries[root_world][1].payload
            for wr in wr_by_comm_rank:
                out[wr] = val
        elif name == "reduce":
            total = self._reduce_payloads(ordered)
            for wr in wr_by_comm_rank:
                out[wr] = total if wr == root_world else None
        elif name == "allreduce":
            total = self._reduce_payloads(ordered)
            for wr in wr_by_comm_rank:
                out[wr] = total
        elif name == "gather":
            for wr in wr_by_comm_rank:
                out[wr] = list(ordered) if wr == root_world else None
        elif name == "allgather":
            for wr in wr_by_comm_rank:
                out[wr] = list(ordered)
        elif name == "scatter":
            chunks = entries[root_world][1].payload
            for i, wr in enumerate(wr_by_comm_rank):
                out[wr] = None if chunks is None else chunks[i]
        elif name == "alltoall":
            for i, wr in enumerate(wr_by_comm_rank):
                if all(p is None for p in ordered):
                    out[wr] = None
                else:
                    out[wr] = [p[i] if p is not None else None for p in ordered]
        elif name == "barrier":
            for wr in wr_by_comm_rank:
                out[wr] = None
        else:
            raise ValueError(f"unknown collective {name!r}")
        return out

    # -- split ----------------------------------------------------------------
    def _do_split(self, st: _RankState, op: SplitOp) -> None:
        group: CommGroup = op.comm.group
        me_world = group.world_ranks[op.comm.rank]
        seq = group.coll_counts[me_world]
        group.coll_counts[me_world] = seq + 1
        pend = group.pending.get(seq)
        if pend is None:
            pend = _CollPending("__split__")
            group.pending[seq] = pend
        elif pend.name != "__split__":
            raise RuntimeError(
                f"collective mismatch on comm {group.gid} seq {seq}: "
                f"{pend.name} vs split (rank {me_world})"
            )
        pend.entries[me_world] = (st.time, op)
        st.park_reason = f"comm_split on comm {group.gid}"
        if len(pend.entries) == group.size:
            del group.pending[seq]
            self._finish_split(group, pend)

    def _finish_split(self, group: CommGroup, pend: _CollPending) -> None:
        prof = self.profiler
        entries = pend.entries
        # group members by color, ordered by (key, world rank) like MPI
        by_color: Dict[int, List[Tuple[int, int]]] = {}
        for wr, (_, op) in entries.items():
            if op.color is None:
                continue
            by_color.setdefault(op.color, []).append((op.key, wr))
        subgroups: Dict[int, CommGroup] = {}
        for color, members in sorted(by_color.items()):
            members.sort()
            ranks = tuple(wr for _, wr in members)
            subgroups[color] = self._make_group(ranks, parent=group)
        prof.on_comm_split(group, list(subgroups.values()))
        # MPI_Comm_split is an allgather of (color, key) internally
        cost = self.machine.collectives().allgather(8, group.size)
        start = max(t for t, _ in entries.values())
        completion = start + prof.intercept_cost(group.size) + cost
        for wr, (_, op) in entries.items():
            self._states[wr].park_reason = None
            if op.color is None:
                self._push(completion, wr, None)
            else:
                sub = subgroups[op.color]
                self._push(completion, wr, Comm(sub, sub.world_ranks.index(wr)))
