"""Ablations of the design choices DESIGN.md calls out.

1. **sqrt(alpha) confidence scaling** — the paper's central statistical
   idea: counting a kernel's occurrences along the critical path shrinks
   its confidence interval by sqrt(alpha).  Compare online propagation
   (scaling on) against conditional execution (scaling off) at a fixed
   tolerance: the scaled policy must skip more and tune faster, at a
   modest accuracy cost (Figs. 4/5 show exactly this ordering).

2. **Noise sensitivity** — how the invocation-noise level changes both
   the achievable speedup and the prediction error: with noisier
   kernels, predictability takes more samples (less skipping) and
   errors rise.

3. **Interception overhead** — Critter's internal messages are not
   free; measure the full-execution slowdown versus an uninstrumented
   run (the paper remarks the overhead is minimal even for
   nonblocking-heavy QR).
"""

from __future__ import annotations

import pytest

from bench_profiles import make_space, results_path
from repro.analysis import format_table, save_csv
from repro.autotune import ExhaustiveTuner, default_machine, measure_ground_truth
from repro.critter import Critter
from repro.sim import Machine, NoiseModel, NullProfiler, Simulator


def test_ablation_alpha_scaling(benchmark):
    """Path-count CI scaling: online vs conditional at fixed eps."""
    space = make_space("capital_cholesky")
    machine = default_machine(space, seed=23)
    ground = measure_ground_truth(space, machine, full_reps=2, seed=0)
    rows = []
    for policy in ("conditional", "online"):
        for eps in (2**-4, 2**-6):
            r = ExhaustiveTuner(space, machine, policy=policy, eps=eps,
                                reps=3, ground_truth=ground, seed=0).run()
            rows.append([policy, eps, r.search_time, r.search_speedup,
                         r.mean_log2_exec_error])
    print()
    print(format_table(
        ["policy", "eps", "search_s", "speedup", "log2_err"], rows,
        title="Ablation — sqrt(alpha) confidence scaling (online) vs none (conditional)",
    ))
    save_csv(results_path("ablation_alpha_scaling.csv"),
             ["policy", "eps", "search_s", "speedup", "log2_err"], rows)
    # scaling on must not tune slower than scaling off at equal eps
    cond = {(r[1]): r[2] for r in rows if r[0] == "conditional"}
    onl = {(r[1]): r[2] for r in rows if r[0] == "online"}
    for eps in cond:
        assert onl[eps] <= cond[eps] * 1.1
    benchmark.pedantic(
        lambda: ExhaustiveTuner(space, machine, policy="online", eps=2**-4,
                                reps=1, ground_truth=ground, seed=1).run(),
        rounds=1, iterations=1,
    )


def test_ablation_noise_sensitivity(benchmark):
    """Invocation-noise level vs achieved speedup and error."""
    space = make_space("capital_cholesky")
    rows = []
    for cv in (0.02, 0.08, 0.3):
        machine = default_machine(space, seed=29)
        noise = NoiseModel(comp_cv=cv, comm_cv=cv * 2, machine_seed=29)
        # monkey-wire the noise by building tuners around custom sims
        ground = []
        from repro.autotune.tuner import GroundTruth, _seed_for

        for idx, config in enumerate(space.configs):
            cr = Critter(policy="never-skip")
            times = []
            for rep in range(2):
                sim = Simulator(machine, noise=noise, profiler=cr)
                times.append(sim.run(space.program, args=(config,),
                                     run_seed=_seed_for(0, idx, rep, full=True)).makespan)
            ground.append(GroundTruth(
                times=times, path=cr.last_report.predicted,
                max_rank_comp_time=cr.last_report.max_rank_comp_time,
                max_rank_kernel_time=cr.last_report.max_rank_kernel_time))
        cr = Critter(policy="online", eps=2**-3)
        tuning = 0.0
        errors = []
        for idx, config in enumerate(space.configs):
            cr.reset_statistics()
            for rep in range(3):
                sim = Simulator(machine, noise=noise, profiler=cr)
                tuning += sim.run(space.program, args=(config,),
                                  run_seed=_seed_for(0, idx, rep)).makespan
            truth = ground[idx].mean_time
            errors.append(abs(cr.last_report.predicted_exec_time - truth) / truth)
        full_time = sum(g.mean_time * 3 for g in ground)
        rows.append([cv, full_time / tuning, sum(errors) / len(errors)])
    print()
    print(format_table(["comp_cv", "speedup", "mean_err"], rows,
                       title="Ablation — noise level vs speedup and error"))
    save_csv(results_path("ablation_noise.csv"),
             ["comp_cv", "speedup", "mean_err"], rows)
    # noisier kernels are harder to predict
    assert rows[0][2] <= rows[-1][2] * 1.5
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_extrapolation(benchmark):
    """Section VIII extension: family line fitting on CANDMC QR.

    CANDMC's shrinking trailing matrix produces many once-seen kernel
    signatures, starving per-signature confidence intervals — the cause
    of Fig. 5a's ~1.2x ceiling.  With extrapolation, kernels at unseen
    sizes are predicted from their family fit and skipped.  Run in the
    smooth-efficiency regime where line fitting is statistically valid.
    """
    from repro.autotune import candmc_qr_space
    from repro.autotune.tuner import _seed_for

    space = candmc_qr_space()
    machine = default_machine(space, seed=53)
    noise = NoiseModel(bias_sigma=0.02, comp_cv=0.05, comm_cv=0.1,
                       run_cv=0.005, machine_seed=53)
    rows = []
    outcomes = {}
    for label, extrapolate in (("per-signature", False), ("line-fitting", True)):
        critter = Critter(policy="conditional", eps=2**-3,
                          extrapolate=extrapolate, extrapolation_tolerance=0.2)
        tuning = 0.0
        skips = []
        for idx, config in enumerate(space.configs):
            critter.reset_statistics()
            for rep in range(3):
                sim = Simulator(machine, noise=noise, profiler=critter)
                tuning += sim.run(space.program, args=(config,),
                                  run_seed=_seed_for(0, idx, rep)).makespan
            skips.append(critter.last_report.skip_fraction)
        outcomes[label] = tuning
        rows.append([label, tuning, sum(skips) / len(skips)])
    print()
    print(format_table(["method", "search_s", "mean_skip_frac"], rows,
                       title="Ablation — Section VIII kernel-model "
                             "extrapolation on CANDMC QR", width=16))
    save_csv(results_path("ablation_extrapolation.csv"),
             ["method", "search_s", "mean_skip_frac"], rows)
    assert outcomes["line-fitting"] < outcomes["per-signature"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_interception_overhead(benchmark):
    """Never-skip Critter vs uninstrumented runs: profiling overhead."""
    space = make_space("slate_cholesky")
    machine = default_machine(space, seed=31)
    rows = []
    for idx in (0, len(space.configs) // 2):
        config = space.configs[idx]
        bare = Simulator(machine, profiler=NullProfiler()).run(
            space.program, args=(config,), run_seed=3).makespan
        cr = Critter(policy="never-skip")
        instrumented = Simulator(machine, profiler=cr).run(
            space.program, args=(config,), run_seed=3).makespan
        rows.append([idx, config.label(), bare, instrumented,
                     (instrumented - bare) / bare * 100.0])
    print()
    print(format_table(["cfg", "label", "bare_s", "critter_s", "overhead_%"],
                       rows, title="Ablation — Critter interception overhead"))
    save_csv(results_path("ablation_overhead.csv"),
             ["cfg", "label", "bare_s", "critter_s", "overhead_pct"], rows)
    for r in rows:
        assert r[4] < 25.0, "interception overhead should stay modest"

    config = space.configs[0]

    def run():
        cr = Critter(policy="never-skip")
        Simulator(machine, profiler=cr).run(space.program, args=(config,), run_seed=3)

    benchmark.pedantic(run, rounds=3, iterations=1)
