"""P2P rendezvous fast path: edge cases and differential fuzz.

The golden fixtures pin the inline blocking-send completion against
pre-refactor recordings; this module covers the *semantics* around it:
self-sends and tag mismatches must still deadlock with useful reports,
empty waits resolve (or fail) identically under both schedulers, the
declared-size mismatch warning is byte-identical between the inline and
heap rendezvous paths, waitany tie-breaking survives an exact three-way
timestamp tie (inline-completed p2p, heap-completed p2p, collective),
and randomized pure-p2p programs agree between schedulers.

The fuzz case count scales with ``REPRO_P2P_FUZZ_CASES`` (default 6) so
the CI differential-fuzz leg can run a wider sweep than local runs.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.critter import Critter
from repro.kernels.blas import gemm_spec
from repro.sim import DeadlockError, Machine, NoiseModel, Simulator
from repro.sim.ops import WaitOp
from repro.sim.presets import make_machine

from conftest import make_quiet_sim
from test_engine_fastpath import run_both


# ----------------------------------------------------------------------
# self-send
# ----------------------------------------------------------------------
class TestSelfSend:
    def test_blocking_self_send_deadlocks(self):
        """``send(dest=self.rank)`` with no self-receive parks forever.

        Both schedulers must detect the deadlock (the fast path parks
        the rank in place without a heap trip — the report must still
        name the blocking send).
        """

        def prog(comm):
            yield comm.send("x", dest=comm.rank, tag=3, nbytes=8)

        for fast in (True, False):
            m = Machine(nprocs=2, seed=0)
            sim = Simulator(m, fast_path=fast)
            with pytest.raises(DeadlockError, match=r"blocking send peer=0 tag=3"):
                sim.run(prog)

    def test_self_isend_recv_roundtrip(self):
        """A buffered self-send matched by a later self-receive works."""

        def prog(comm):
            req = yield comm.isend(comm.rank * 11, dest=comm.rank, tag=1,
                                   nbytes=8)
            yield comm.compute(gemm_spec(8, 8, 8))
            got = yield comm.recv(source=comm.rank, tag=1, nbytes=8)
            yield comm.wait(req)
            return got

        res = run_both(prog, nprocs=3)
        assert res.returns == [0, 11, 22]

    def test_self_blocking_send_into_posted_irecv(self):
        """A posted self-irecv lets a blocking self-send rendezvous."""

        def prog(comm):
            req = yield comm.irecv(source=comm.rank, tag=2, nbytes=16)
            yield comm.send("loop", dest=comm.rank, tag=2, nbytes=16)
            got = yield comm.wait(req)
            return got

        res = run_both(prog, nprocs=2)
        assert res.returns == ["loop", "loop"]


# ----------------------------------------------------------------------
# tag mismatch
# ----------------------------------------------------------------------
class TestTagMismatch:
    def _prog(self, send_tag, recv_tag):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send("m", dest=1, tag=send_tag, nbytes=8)
            else:
                got = yield comm.recv(source=0, tag=recv_tag, nbytes=8)
                return got
        return prog

    def test_mismatched_tags_never_match(self):
        for fast in (True, False):
            m = Machine(nprocs=2, seed=0)
            sim = Simulator(m, fast_path=fast)
            with pytest.raises(DeadlockError) as exc:
                sim.run(self._prog(send_tag=1, recv_tag=2))
            # both parked endpoints appear in the report with their tags
            assert "blocking send peer=1 tag=1" in str(exc.value)
            assert "blocking recv peer=0 tag=2" in str(exc.value)

    def test_matching_tags_control(self):
        res = run_both(self._prog(send_tag=5, recv_tag=5), nprocs=2)
        assert res.returns[1] == "m"


# ----------------------------------------------------------------------
# empty waits
# ----------------------------------------------------------------------
class TestEmptyWaits:
    def test_empty_waitall_resumes_immediately(self):
        def prog(comm):
            got = yield comm.waitall([])
            yield comm.barrier()
            return ("done", got)

        res = run_both(prog, nprocs=2)
        assert res.returns == [("done", []), ("done", [])]

    def test_empty_waitany_rejected_at_build_time(self):
        comm_holder = {}

        def prog(comm):
            comm_holder["comm"] = comm
            yield comm.barrier()

        make_quiet_sim(1).run(prog)
        with pytest.raises(ValueError, match="waitany requires at least one"):
            comm_holder["comm"].waitany([])

    @pytest.mark.parametrize("mode", ["one", "any"])
    def test_empty_wait_op_rejected_by_engine(self, mode):
        """Directly-built empty one/any WaitOps fail fast, not forever."""

        def prog(comm):
            yield WaitOp([], mode=mode)

        for fast in (True, False):
            sim = Simulator(Machine(nprocs=1, seed=0), fast_path=fast)
            with pytest.raises(ValueError, match="at least one request"):
                sim.run(prog)


# ----------------------------------------------------------------------
# waitany tie-breaking at an exact timestamp tie
# ----------------------------------------------------------------------
class TestWaitanyTie:
    """An inline-completed p2p, a heap-completed p2p, and a collective
    all finishing at the bit-identical timestamp.

    Machine constants are dyadic so the tie is float-exact:
    ``p2p(1024 B) = alpha + beta*1024 = 2**-20 + 2**-30 * 2**10 =
    2**-19`` equals ``barrier(2) = 2 * alpha = 2**-19``.  Rank 0 holds
    isend requests to rank 1 (clean receiver: completed by the inline
    rendezvous) and rank 2 (irecv-encumbered receiver: completed through
    the heap); ranks 3 and 4 run a sub-communicator barrier completing
    at the same instant.  The waitany is posted after every completion
    is known, so the winner must be the list-position tie-break — on
    both schedulers.
    """

    NB = 1024

    def _machine(self):
        m = Machine(nprocs=5, alpha=2.0 ** -20, beta=2.0 ** -30,
                    gamma=2.0 ** -40, seed=0)
        noise = NoiseModel(bias_sigma=0.0, comp_cv=0.0, comm_cv=0.0,
                           run_cv=0.0)
        return m, noise

    def _prog(self, comm):
        me = comm.rank
        sub = yield comm.split(color=0 if me >= 3 else None, key=me)
        if me == 0:
            r_inline = yield comm.isend("to1", dest=1, tag=1, nbytes=self.NB)
            r_heap = yield comm.isend("to2", dest=2, tag=2, nbytes=self.NB)
            # run past the completion window so every completion is
            # discovered before the waitany is (re)dispatched
            yield comm.compute(gemm_spec(64, 64, 64))
            winner = yield comm.waitany([r_heap, r_inline])
            yield comm.waitall([r_heap, r_inline])
            return winner
        if me == 1:
            yield comm.recv(source=0, tag=1, nbytes=self.NB)
            return None
        if me == 2:
            pending = yield comm.irecv(source=3, tag=9, nbytes=8)
            yield comm.recv(source=0, tag=2, nbytes=self.NB)
            got = yield comm.wait(pending)
            return got
        if me == 3:
            yield sub.barrier()
            yield comm.send("unblock", dest=2, tag=9, nbytes=8)
            return None
        yield sub.barrier()
        return None

    def test_tie_broken_by_request_position_on_both_schedulers(self):
        machine, noise = self._machine()
        results = []
        for fast in (True, False):
            sim = Simulator(machine, noise=noise, fast_path=fast)
            res = sim.run(self._prog)
            assert sim.used_fast_path is fast
            results.append(res)
        fast_res, naive_res = results
        assert fast_res.makespan == naive_res.makespan
        assert fast_res.rank_times == naive_res.rank_times
        assert fast_res.returns == naive_res.returns
        # the constructed three-way tie actually held: rank 1 finishes
        # at its recv completion, rank 4 at the barrier completion
        assert fast_res.rank_times[1] == fast_res.rank_times[4]
        # both requests completed at the bit-identical time, so the
        # list-position tie-break picks index 0 (the heap-completed one)
        assert fast_res.returns[0] == (0, None)


# ----------------------------------------------------------------------
# size-mismatch warning parity between inline and heap rendezvous
# ----------------------------------------------------------------------
class TestMismatchWarningParity:
    def _collect(self, prog, nprocs):
        """The mismatch warning messages of one run per scheduler."""
        out = []
        machine, noise = make_machine("quiet", nprocs, seed=11)
        for fast in (True, False):
            sim = Simulator(machine, noise=noise, fast_path=fast)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                sim.run(prog, run_seed=1)
            msgs = [str(w.message) for w in caught
                    if issubclass(w.category, RuntimeWarning)]
            assert msgs, "expected a size-mismatch warning"
            out.append(msgs)
        return out

    def test_recv_meets_queued_send(self):
        """Inline recv->queued-send rendezvous warns like the heap path."""

        def prog(comm):
            if comm.rank == 0:
                yield comm.send("x", dest=1, tag=4, nbytes=64)
            else:
                yield comm.compute(gemm_spec(16, 16, 16))
                yield comm.recv(source=0, tag=4, nbytes=32)

        fast_msgs, naive_msgs = self._collect(prog, 2)
        assert fast_msgs == naive_msgs
        assert "p2p size mismatch (tag 4)" in fast_msgs[0]
        assert "sent 64 B" in fast_msgs[0] and "32 B receive" in fast_msgs[0]

    def test_send_meets_parked_recv(self):
        """Inline send->parked-recv rendezvous warns like the heap path."""

        def prog(comm):
            if comm.rank == 0:
                yield comm.compute(gemm_spec(16, 16, 16))
                yield comm.send("x", dest=1, tag=7, nbytes=128)
            else:
                yield comm.recv(source=0, tag=7, nbytes=8)

        fast_msgs, naive_msgs = self._collect(prog, 2)
        assert fast_msgs == naive_msgs
        assert "p2p size mismatch (tag 7)" in fast_msgs[0]

    def test_isend_meets_parked_recv(self):
        """The scalar isend->parked-recv path warns identically too."""

        def prog(comm):
            if comm.rank == 0:
                yield comm.compute(gemm_spec(16, 16, 16))
                req = yield comm.isend("x", dest=1, tag=9, nbytes=256)
                yield comm.wait(req)
            else:
                yield comm.recv(source=0, tag=9, nbytes=16)

        fast_msgs, naive_msgs = self._collect(prog, 2)
        assert fast_msgs == naive_msgs
        assert "p2p size mismatch (tag 9)" in fast_msgs[0]


# ----------------------------------------------------------------------
# deferred matches
# ----------------------------------------------------------------------
class TestDeferredMatch:
    def test_blocking_recv_under_open_irecv_window(self):
        """Regression (code review): a blocking recv posted while an
        irecv is still outstanding must NOT consume an early-queued
        future-posted send in place — the receiver's RNG stream still
        owes the irecv's match draw first, which the naive scheduler
        orders at its earlier global position.  The match defers to the
        send's post time via _FinishP2P, like the pure-irecv case.
        """

        def prog(comm):
            if comm.rank == 0:
                r_i = yield comm.irecv(source=1, tag=1, nbytes=64)
                got = yield comm.recv(source=2, tag=2, nbytes=64)
                yield comm.wait(r_i)
                return got
            if comm.rank == 1:
                yield comm.compute(gemm_spec(24, 24, 24))
                yield comm.send("one", dest=0, tag=1, nbytes=64)
                return None
            # rank 2 runs far ahead inline, so its blocking send is
            # early-queued with a post time past both rank-0 receives
            for _ in range(8):
                yield comm.compute(gemm_spec(40, 40, 40))
            yield comm.send("two", dest=0, tag=2, nbytes=64)
            return None

        res = run_both(prog, nprocs=3)
        assert res.returns[0] == "two"

    def test_blocking_recv_clean_stream_matches_in_place(self):
        """Control: with no irecv outstanding, the parked receiver's
        next draw is the match at any processing position — no
        deferral, still bit-identical."""

        def prog(comm):
            if comm.rank == 0:
                got = yield comm.recv(source=1, tag=2, nbytes=64)
                return got
            for _ in range(8):
                yield comm.compute(gemm_spec(40, 40, 40))
            yield comm.send("late", dest=0, tag=2, nbytes=64)
            return None

        res = run_both(prog, nprocs=2)
        assert res.returns[0] == "late"


# ----------------------------------------------------------------------
# differential fuzz: randomized pure-p2p programs
# ----------------------------------------------------------------------
def _random_p2p_program(case_seed: int, p: int, rounds: int = 6):
    """A seeded random pure-p2p op soup, deadlock-free by construction.

    Each round draws a random perfect matching of the ranks; paired
    ranks run a blocking exchange (lower rank sends first, higher rank
    receives first), sprinkled with rank-skewed computes.  Every third
    round runs a blocking panel chain down the rank line, and rounds
    divisible by 4 overlay an isend/irecv ring reaped by waitall or
    wait+recv — covering inline completion, early queuing, the irecv
    heap fallback, and deferred matches in one program.
    """
    rng = np.random.default_rng(case_seed)
    matchings = []
    for _ in range(rounds):
        perm = list(rng.permutation(p))
        pairs = {}
        for i in range(0, p - 1, 2):
            a, b = int(perm[i]), int(perm[i + 1])
            pairs[a] = b
            pairs[b] = a
        matchings.append(pairs)
    sizes = [8 * int(x) for x in rng.integers(1, 48, size=rounds)]
    scripts = [[int(x) for x in rng.integers(0, 5, size=4)]
               for _ in range(rounds)]

    def prog(comm):
        me = comm.rank
        nxt, prv = (me + 1) % p, (me - 1) % p
        for r in range(rounds):
            nb = sizes[r]
            for code in scripts[r][:2]:
                if code < 3:
                    yield comm.compute(gemm_spec(8 + ((me + code) % 5), 8, 8))
            peer = matchings[r].get(me)
            if peer is not None:
                if me < peer:
                    yield comm.send(me, dest=peer, tag=r, nbytes=nb)
                    got = yield comm.recv(source=peer, tag=rounds + r,
                                          nbytes=nb)
                    assert got == peer
                else:
                    got = yield comm.recv(source=peer, tag=r, nbytes=nb)
                    assert got == peer
                    yield comm.send(me, dest=peer, tag=rounds + r, nbytes=nb)
            if r % 3 == 2:
                if me > 0:
                    yield comm.recv(source=me - 1, tag=900 + r, nbytes=nb)
                yield comm.compute(gemm_spec(8, 8, 8 + (me % 3)))
                if me < p - 1:
                    yield comm.send(dest=me + 1, tag=900 + r, nbytes=nb)
            if r % 4 == 0:
                sreq = yield comm.isend(me, dest=nxt, tag=500 + r, nbytes=nb)
                if scripts[r][2] % 2 == 0:
                    rreq = yield comm.irecv(source=prv, tag=500 + r, nbytes=nb)
                    if peer is not None and scripts[r][3] % 2 == 0:
                        # blocking exchange under the open irecv window
                        # (the deferred-match hazard class)
                        if me < peer:
                            yield comm.send(me, dest=peer, tag=700 + r,
                                            nbytes=nb)
                            yield comm.recv(source=peer, tag=800 + r,
                                            nbytes=nb)
                        else:
                            yield comm.recv(source=peer, tag=700 + r,
                                            nbytes=nb)
                            yield comm.send(me, dest=peer, tag=800 + r,
                                            nbytes=nb)
                    yield comm.compute(gemm_spec(10, 8, 8))
                    yield comm.waitall([rreq, sreq])
                else:
                    yield comm.recv(source=prv, tag=500 + r, nbytes=nb)
                    yield comm.wait(sreq)
        return me

    return prog


_FUZZ_CASES = int(os.environ.get("REPRO_P2P_FUZZ_CASES", "6"))

#: when "1", every fuzz case is replayed under both schedulers with
#: EngineDiagnostics attached and the results are asserted bit-identical
#: against the counters-off run (CI's differential-fuzz leg sets this;
#: it doubles the per-case cost, so it is off by default locally)
_FUZZ_DIAG = os.environ.get("REPRO_P2P_FUZZ_DIAG", "") == "1"


@pytest.mark.parametrize("case", range(_FUZZ_CASES))
@pytest.mark.parametrize("with_critter", [False, True],
                         ids=["null", "critter"])
def test_differential_random_p2p_programs(case, with_critter):
    """Property check: both schedulers agree on seeded pure-p2p soups."""
    p = [2, 3, 4, 5, 6, 8][case % 6]
    preset = ["knl-fabric", "cloud-vm", "quiet"][case % 3]
    factory = (lambda: Critter(policy="online", eps=0.3)) if with_critter else None
    prog = _random_p2p_program(7000 + case, p)
    res = run_both(prog, nprocs=p,
                   preset=preset, profiler_factory=factory, run_seed=case)
    assert sorted(res.returns) == list(range(p))
    if _FUZZ_DIAG:
        # counters must never perturb scheduling, draws, or hooks
        from repro.sim.diagnostics import EngineDiagnostics

        machine, noise = make_machine(preset, p, seed=11)
        for fast in (True, False):
            diag = EngineDiagnostics()
            sim = Simulator(machine, noise=noise,
                            profiler=factory() if factory else None,
                            fast_path=fast, diagnostics=diag)
            counted = sim.run(prog, run_seed=case)
            assert counted.makespan == res.makespan
            assert counted.rank_times == res.rank_times
            assert counted.returns == res.returns
            c = diag.as_dict()["counters"]
            assert all(n >= 0 for n in c["inline_handled"].values())
            assert (c["match_inline"] + c["match_deferred"]
                    + c["match_heap"] == c["match_total"])
