"""Job abstraction: self-contained units of simulated experiment work.

A :class:`RunRequest` *describes* a measurement instead of performing
it: which configuration space, which configuration, which machine and
noise process, which selective-execution policy, how many repetitions,
and the deterministic base seed.  :func:`execute_request` turns a
request into a :class:`RunResult` — and is a module-level function so
requests can be shipped to worker processes by a process-pool executor.

Three job kinds exist:

* ``ground-truth``  — ``reps`` full (never-skip) executions of one
  configuration; the reference measurements of Section VI.
* ``tune-config``   — the selective-execution protocol for one
  configuration: an optional apriori offline pass followed by ``reps``
  runs under the requested policy, statistics accumulating across the
  repetitions *inside the job*.  Valid for every policy that resets
  statistics between configurations, which makes each configuration an
  independent, order-free unit of work.
* ``tune-pass``     — the whole configuration list measured sequentially
  with one shared profiler.  Required by eager propagation, whose whole
  point is reusing kernel models *across* configurations (Section VI.B);
  parallelizing over configurations would change its results.

Because every job owns its statistics and every simulator run draws
from an RNG stream keyed only on ``(seed, config, rep, role)``, results
are bit-identical no matter which executor schedules the jobs — the
property the runner's tests pin down.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.critter.core import Critter
from repro.critter.pathset import PathMetrics
from repro.critter.policies import make_policy
from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.sim.noise import NoiseModel

__all__ = [
    "GROUND_TRUTH",
    "TUNE_CONFIG",
    "TUNE_PASS",
    "RunRequest",
    "RunResult",
    "GroundTruthResult",
    "ConfigResult",
    "JobExecutionError",
    "seed_for",
    "execute_request",
    "failed_result",
    "request_fingerprint",
    "request_key",
    "result_to_dict",
    "result_from_dict",
]

GROUND_TRUTH = "ground-truth"
TUNE_CONFIG = "tune-config"
TUNE_PASS = "tune-pass"


def seed_for(base: int, idx: int, rep: int, full: bool = False,
             offline: bool = False) -> int:
    """Disjoint RNG streams per (config, repetition, role).

    Full, selective, and offline runs of any (config, rep) never share a
    stream — shared streams would correlate the "independent"
    measurements the statistics assume.
    """
    kind = 2 if offline else (1 if full else 0)
    return ((base * 1009 + idx) * 64 + rep) * 4 + kind


# ----------------------------------------------------------------------
# requests
# ----------------------------------------------------------------------
@dataclass(slots=True)
class RunRequest:
    """Description of one independent simulated experiment job."""

    kind: str
    #: duck-typed configuration space (see repro.autotune.configspace)
    space: Any
    machine: Machine
    seed: int = 0
    #: repetitions: full runs for ground truth, selective runs otherwise
    reps: int = 3
    #: configuration index; ``None`` only for whole-space ``tune-pass`` jobs
    config_index: Optional[int] = None
    policy: str = "never-skip"
    eps: float = 0.0
    confidence: float = 0.95
    min_samples: int = 2
    #: shifts selective rep seeds (multi-round search strategies)
    rep_offset: int = 0
    #: perform the apriori offline counting pass before the selective reps
    offline: bool = False
    #: timing-noise override; ``None`` uses the machine's default process
    noise: Optional[NoiseModel] = None

    def __post_init__(self) -> None:
        if self.kind not in (GROUND_TRUTH, TUNE_CONFIG, TUNE_PASS):
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.kind != TUNE_PASS and self.config_index is None:
            raise ValueError(f"{self.kind} jobs require a config_index")

    def describe(self) -> str:
        cfg = "*" if self.config_index is None else self.config_index
        return (f"kind={self.kind} space={self.space.name} config={cfg} "
                f"policy={self.policy} eps={self.eps:g} reps={self.reps}")


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass(slots=True)
class GroundTruthResult:
    """Full-execution reference measurements for one configuration."""

    index: int
    times: List[float]
    path: PathMetrics
    max_rank_comp_time: float
    max_rank_kernel_time: float


@dataclass(slots=True)
class ConfigResult:
    """Selective-execution measurements for one configuration."""

    index: int
    tuning_time: float
    offline_time: float
    predicted: PathMetrics
    kernel_time: float
    comp_time: float
    skip_fraction: float


@dataclass(slots=True)
class RunResult:
    """Outcome of one job: a list of per-configuration measurements.

    ``status`` is ``"ok"`` for a completed job and ``"failed"`` for a
    job the resilient executor quarantined after exhausting its retry
    budget; failed results carry an empty ``outputs`` list and a
    human-readable ``error`` naming the job and its failure history.
    Downstream layers (tuner/sweep/search/report) skip-and-annotate
    failed results instead of crashing, so one poison job degrades a
    sweep gracefully rather than aborting it.
    """

    kind: str
    outputs: List[Any] = field(default_factory=list)
    #: set by the runner when the result came from the disk cache
    cached: bool = False
    #: ``"ok"`` or ``"failed"``
    status: str = "ok"
    #: failure description (request key, kind, attempts, last error)
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.status != "ok"


class JobExecutionError(RuntimeError):
    """A worker-side failure, annotated with the job's identity.

    ``execute_request`` wraps any exception escaping a job body so the
    parent process — with or without retries — sees *which* job failed
    (request key, kind, config, seed, attempt) instead of a bare
    traceback from an anonymous pool worker.
    """


def failed_result(req: RunRequest, error: str) -> RunResult:
    """A structured failure outcome for a quarantined job."""
    return RunResult(kind=req.kind, outputs=[], status="failed", error=error)


# ----------------------------------------------------------------------
# execution (runs in worker processes)
# ----------------------------------------------------------------------
def _full_critter(space: Any) -> Critter:
    return Critter(policy="never-skip", exclude=space.exclude)


def _run_ground_truth(req: RunRequest) -> RunResult:
    space, idx = req.space, req.config_index
    cr = _full_critter(space)
    times: List[float] = []
    for rep in range(req.reps):
        sim = Simulator(req.machine, noise=req.noise, profiler=cr)
        res = sim.run(space.program, args=space.args_for(space.configs[idx]),
                      run_seed=seed_for(req.seed, idx, rep, full=True))
        times.append(res.makespan)
    rep0 = cr.last_report
    out = GroundTruthResult(
        index=idx,
        times=times,
        path=rep0.predicted.copy(),
        max_rank_comp_time=rep0.max_rank_comp_time,
        max_rank_kernel_time=rep0.max_rank_kernel_time,
    )
    return RunResult(kind=req.kind, outputs=[out])


def _run_tuning(req: RunRequest) -> RunResult:
    space = req.space
    policy = make_policy(req.policy)
    indices: Sequence[int] = (
        range(len(space.configs)) if req.kind == TUNE_PASS else [req.config_index]
    )
    critter = Critter(
        policy=policy,
        eps=req.eps,
        confidence=req.confidence,
        min_samples=req.min_samples,
        exclude=space.exclude,
    )
    outputs: List[ConfigResult] = []
    for idx in indices:
        if policy.resets_between_configs:
            critter.reset_statistics()
        offline_time = 0.0
        if req.offline and policy.needs_offline_counts:
            pre = _full_critter(space)
            res = Simulator(req.machine, noise=req.noise, profiler=pre).run(
                space.program, args=space.args_for(space.configs[idx]),
                run_seed=seed_for(req.seed, idx, 0, offline=True),
            )
            offline_time = res.makespan
            critter.seed_path_counts(pre.last_path_counts)
        tuning_time = offline_time
        kernel_time = 0.0
        comp_time = 0.0
        for rep in range(req.reps):
            res = Simulator(req.machine, noise=req.noise, profiler=critter).run(
                space.program, args=space.args_for(space.configs[idx]),
                run_seed=seed_for(req.seed, idx, req.rep_offset + rep),
            )
            tuning_time += res.makespan
            kernel_time += critter.last_report.max_rank_kernel_time
            comp_time += critter.last_report.max_rank_comp_time
        outputs.append(ConfigResult(
            index=idx,
            tuning_time=tuning_time,
            offline_time=offline_time,
            predicted=critter.last_report.predicted.copy(),
            kernel_time=kernel_time,
            comp_time=comp_time,
            skip_fraction=critter.last_report.skip_fraction,
        ))
    return RunResult(kind=req.kind, outputs=outputs)


def execute_request(req: RunRequest, attempt: int = 0) -> RunResult:
    """Run one job to completion (the worker-side entry point).

    ``attempt`` counts prior submissions of the same job (the resilient
    executor passes it on retries); it feeds fault injection and failure
    messages only — job results never depend on it.  Any exception from
    the job body is re-raised as :class:`JobExecutionError` carrying the
    request key, kind, config, and seed, so failures stay attributable
    even through a bare process pool with retries disabled.
    """
    from repro.runner.faults import active_plan

    try:
        plan = active_plan()
        if plan is not None:
            plan.apply(req, attempt)
        if req.kind == GROUND_TRUTH:
            return _run_ground_truth(req)
        return _run_tuning(req)
    except JobExecutionError:
        raise
    except Exception as exc:
        raise JobExecutionError(
            f"{type(exc).__name__}: {exc} [key={request_key(req)} "
            f"kind={req.kind} config={req.config_index} seed={req.seed} "
            f"attempt={attempt}]"
        ) from exc


# ----------------------------------------------------------------------
# content addressing
# ----------------------------------------------------------------------
def _space_fingerprint(space: Any) -> Dict[str, Any]:
    prog = space.program
    return {
        "name": space.name,
        "nprocs": space.nprocs,
        "program": f"{getattr(prog, '__module__', '?')}:"
                   f"{getattr(prog, '__qualname__', repr(prog))}",
        "exclude": sorted(space.exclude),
        "configs": [repr(c) for c in space.configs],
    }


def _noise_fingerprint(req: RunRequest) -> Dict[str, Any]:
    n = req.noise if req.noise is not None else NoiseModel(
        machine_seed=req.machine.seed)
    return {
        "bias_sigma": n.bias_sigma,
        "comp_cv": n.comp_cv,
        "comm_cv": n.comm_cv,
        "run_cv": n.run_cv,
        "machine_seed": n.machine_seed,
        "regime": n.regime,
    }


def request_fingerprint(req: RunRequest) -> Dict[str, Any]:
    """Everything a job's result depends on, as a JSON-able dict.

    Version 2 adds the load-regime and roofline fields (machine
    ``comp_scale``/``comm_scale``/``mem_beta``/``regime``, noise
    ``regime``) so cached results from different regimes never alias.
    """
    m = req.machine
    return {
        "version": 2,
        "kind": req.kind,
        "space": _space_fingerprint(req.space),
        "machine": {
            "nprocs": m.nprocs, "alpha": m.alpha, "beta": m.beta,
            "gamma": m.gamma, "intercept_alpha": m.intercept_alpha,
            "skip_overhead": m.skip_overhead, "seed": m.seed,
            "batched_compute": m.batched_compute,
            "comp_scale": m.comp_scale, "comm_scale": m.comm_scale,
            "mem_beta": m.mem_beta, "regime": m.regime,
        },
        "noise": _noise_fingerprint(req),
        "config_index": req.config_index,
        "policy": req.policy,
        "eps": req.eps,
        "confidence": req.confidence,
        "min_samples": req.min_samples,
        "reps": req.reps,
        "rep_offset": req.rep_offset,
        "offline": req.offline,
        "seed": req.seed,
    }


def request_key(req: RunRequest) -> str:
    """Content address: SHA-256 over the canonical fingerprint JSON."""
    blob = json.dumps(request_fingerprint(req), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# result (de)serialization for the disk cache
# ----------------------------------------------------------------------
def _path_to_list(p: PathMetrics) -> List[float]:
    return [p.exec_time, p.comp_time, p.comm_time, p.synchs, p.words, p.flops]


def _path_from_list(v: Sequence[float]) -> PathMetrics:
    return PathMetrics(*[float(x) for x in v])


def result_to_dict(res: RunResult) -> Dict[str, Any]:
    if res.failed:
        return {"version": 1, "kind": res.kind, "outputs": [],
                "status": res.status, "error": res.error}
    if res.kind == GROUND_TRUTH:
        outputs = [
            {"index": o.index, "times": o.times, "path": _path_to_list(o.path),
             "max_rank_comp_time": o.max_rank_comp_time,
             "max_rank_kernel_time": o.max_rank_kernel_time}
            for o in res.outputs
        ]
    else:
        outputs = [
            {"index": o.index, "tuning_time": o.tuning_time,
             "offline_time": o.offline_time,
             "predicted": _path_to_list(o.predicted),
             "kernel_time": o.kernel_time, "comp_time": o.comp_time,
             "skip_fraction": o.skip_fraction}
            for o in res.outputs
        ]
    return {"version": 1, "kind": res.kind, "outputs": outputs}


def result_from_dict(d: Dict[str, Any]) -> RunResult:
    if d.get("version") != 1:
        raise ValueError(f"unsupported result version {d.get('version')!r}")
    kind = d["kind"]
    if d.get("status", "ok") != "ok":
        return RunResult(kind=kind, outputs=[], status=d["status"],
                         error=d.get("error"))
    if kind == GROUND_TRUTH:
        outputs: List[Any] = [
            GroundTruthResult(
                index=int(o["index"]),
                times=[float(t) for t in o["times"]],
                path=_path_from_list(o["path"]),
                max_rank_comp_time=float(o["max_rank_comp_time"]),
                max_rank_kernel_time=float(o["max_rank_kernel_time"]),
            )
            for o in d["outputs"]
        ]
    else:
        outputs = [
            ConfigResult(
                index=int(o["index"]),
                tuning_time=float(o["tuning_time"]),
                offline_time=float(o["offline_time"]),
                predicted=_path_from_list(o["predicted"]),
                kernel_time=float(o["kernel_time"]),
                comp_time=float(o["comp_time"]),
                skip_fraction=float(o["skip_fraction"]),
            )
            for o in d["outputs"]
        ]
    return RunResult(kind=kind, outputs=outputs)
