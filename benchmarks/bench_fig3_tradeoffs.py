"""Figure 3: BSP cost trade-offs and execution-time decompositions.

For each of the four workloads, one full (never-skip) profiled run per
configuration yields:

* panel row 1 (Figs. 3a-3d): BSP communication cost vs. synchronization
  cost, both as critical-path maxima and volumetric averages;
* panel row 2 (Figs. 3e-3h): BSP computation cost vs. synchronization;
* panel row 3 (Figs. 3i-3l): execution time decomposed into total /
  computation / communication along the critical path.

The paper's qualitative claims these series must reproduce: larger
blocks/tiles trade synchronization (falling) against communication and
computation (rising); the critical-path series upper-bound the
volumetric averages; execution time is non-monotone across the
configuration axis, which is why autotuning is needed.
"""

from __future__ import annotations

import pytest

from bench_profiles import make_space, results_path
from repro.analysis import format_table, save_csv
from repro.autotune import default_machine
from repro.critter import Critter
from repro.sim import Simulator


def profile_space(name):
    """One full profiled run per configuration; returns table rows."""
    space = make_space(name)
    machine = default_machine(space, seed=17)
    rows = []
    for idx, config in enumerate(space.configs):
        cr = Critter(policy="never-skip", exclude=space.exclude)
        res = Simulator(machine, profiler=cr).run(
            space.program, args=space.args_for(config), run_seed=idx
        )
        rep = cr.last_report
        rows.append(
            [
                idx,
                config.label(),
                rep.predicted.synchs,            # BSP synchronization (critical path)
                rep.volumetric["synchs"],        # volumetric avg
                rep.predicted.words,             # BSP communication (critical path)
                rep.volumetric["words"],
                rep.predicted.flops,             # BSP computation (critical path)
                rep.volumetric["flops"],
                res.makespan,                    # execution
                rep.predicted.comp_time,         # computation along path
                rep.predicted.comm_time,         # communication along path
            ]
        )
    return space, rows


HEADERS = [
    "cfg", "label", "sync_cp", "sync_avg", "comm_cp", "comm_avg",
    "flop_cp", "flop_avg", "exec_s", "comp_s", "comm_s",
]


def emit(space, rows, fig_ids):
    print()
    print(format_table(HEADERS, rows,
                       title=f"Figure 3 ({fig_ids}) — {space.description}"))
    save_csv(results_path(f"fig3_{space.name}.csv"), HEADERS, rows)


def check_tradeoffs(rows, block_axis):
    """Shape assertions: sync falls and flops rise along the block axis."""
    sync = [rows[i][2] for i in block_axis]
    flop = [rows[i][6] for i in block_axis]
    assert sync[0] > sync[-1], "synchronization must fall with block size"
    assert flop[-1] >= flop[0] * 0.9, "computation must not fall with block size"
    for r in rows:
        assert r[2] >= 0.999 * r[3], "critical path bounds volumetric (sync)"
        assert r[4] >= 0.999 * r[5], "critical path bounds volumetric (comm)"


def bench_one_config(space, machine):
    config = space.configs[0]

    def run():
        cr = Critter(policy="never-skip", exclude=space.exclude)
        return Simulator(machine, profiler=cr).run(
            space.program, args=space.args_for(config), run_seed=0
        )

    return run


def test_fig3_capital_cholesky(benchmark):
    space, rows = profile_space("capital_cholesky")
    emit(space, rows, "3a/3e/3i")
    check_tradeoffs(rows, block_axis=range(0, 5))  # b grows over v%5
    benchmark.pedantic(bench_one_config(space, default_machine(space, 17)),
                       rounds=3, iterations=1)


def test_fig3_slate_cholesky(benchmark):
    space, rows = profile_space("slate_cholesky")
    emit(space, rows, "3b/3f/3j")
    # tile size grows every other config: compare la=0 columns
    check_tradeoffs(rows, block_axis=range(0, len(rows), 2))
    benchmark.pedantic(bench_one_config(space, default_machine(space, 17)),
                       rounds=3, iterations=1)


def test_fig3_candmc_qr(benchmark):
    space, rows = profile_space("candmc_qr")
    emit(space, rows, "3c/3g/3k")
    check_tradeoffs(rows, block_axis=range(0, 5))
    benchmark.pedantic(bench_one_config(space, default_machine(space, 17)),
                       rounds=3, iterations=1)


def test_fig3_slate_qr(benchmark):
    space, rows = profile_space("slate_qr")
    emit(space, rows, "3d/3h/3l")
    # within one grid shape, panel width grows every 3 configs (w cycle)
    sync = [rows[i][2] for i in range(0, 21, 3)]
    assert sync[0] > sync[-1]
    benchmark.pedantic(bench_one_config(space, default_machine(space, 17)),
                       rounds=3, iterations=1)
