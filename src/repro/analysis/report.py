"""Plain-text table / CSV rendering for benchmark outputs.

Benchmarks print the same rows the paper's figures plot; these helpers
keep the formatting consistent and optionally persist the series under
``results/`` for later inspection.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "save_csv", "fmt"]


def fmt(x, width: int = 10, prec: int = 4) -> str:
    """Format a cell: floats in engineering-friendly form, rest as str."""
    if isinstance(x, float):
        if x == 0.0:
            s = "0"
        elif abs(x) >= 1e5 or 0 < abs(x) < 1e-3:
            s = f"{x:.{prec}g}"
        else:
            s = f"{x:.{prec}f}"
    else:
        s = str(x)
    return s.rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    width: int = 12,
) -> str:
    """Render an aligned text table."""
    lines: List[str] = []
    if title:
        lines.append(title)
    head = " ".join(str(h).rjust(width) for h in headers)
    lines.append(head)
    lines.append("-" * len(head))
    for row in rows:
        lines.append(" ".join(fmt(c, width) for c in row))
    return "\n".join(lines)


def save_csv(path: str, headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Write rows as CSV, creating parent directories; returns the path."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(",".join(str(h) for h in headers) + "\n")
        for row in rows:
            f.write(",".join(repr(c) if isinstance(c, float) else str(c) for c in row) + "\n")
    return path
