"""Kernel signature identity, interning, and stable hashing."""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernels.signature import (
    KernelSignature,
    comm_signature,
    comp_signature,
    stable_hash,
)


class TestInterning:
    def test_same_params_same_object(self):
        a = comp_signature("gemm", 8, 8, 8)
        b = comp_signature("gemm", 8, 8, 8)
        assert a is b

    def test_different_params_different_objects(self):
        assert comp_signature("gemm", 8, 8, 8) is not comp_signature("gemm", 8, 8, 4)

    def test_comm_interned(self):
        assert comm_signature("bcast", 64, 4, 1) is comm_signature("bcast", 64, 4, 1)

    def test_kind_distinguishes(self):
        c = comp_signature("x", 1, 2, 3)
        m = comm_signature("x", 1, 2, 3)
        assert c != m
        assert c.is_comp and not c.is_comm
        assert m.is_comm and not m.is_comp


class TestEquality:
    def test_eq_by_value(self):
        a = KernelSignature("comp", "gemm", (4, 4, 4))
        b = KernelSignature("comp", "gemm", (4, 4, 4))
        assert a == b and hash(a) == hash(b)

    def test_neq_other_type(self):
        assert comp_signature("gemm", 4) != "gemm"

    def test_usable_as_dict_key(self):
        d = {comp_signature("trsm", 16, 16): 1}
        assert d[KernelSignature("comp", "trsm", (16, 16))] == 1

    def test_params_coerced_to_int(self):
        s = comp_signature("potrf", 8.0)
        assert s.params == (8,)
        assert isinstance(s.params[0], int)


class TestStableHash:
    def test_stable_across_objects(self):
        a = KernelSignature("comp", "gemm", (4, 4, 4))
        b = KernelSignature("comp", "gemm", (4, 4, 4))
        assert a.stable_hash() == b.stable_hash()

    def test_known_stability(self):
        # guards against accidental changes to the hashing scheme: these
        # values seed the noise model, so changing them silently would
        # alter every experiment in the repo
        s = comp_signature("gemm", 64, 64, 64)
        assert s.stable_hash() == stable_hash(("comp", "gemm", (64, 64, 64)))

    def test_distinct_for_distinct_sigs(self):
        seen = set()
        for n in range(1, 200):
            seen.add(comp_signature("gemm", n, n, n).stable_hash())
        assert len(seen) == 199

    def test_cached_value_consistent(self):
        s = comp_signature("syrk", 32, 8)
        assert s.stable_hash() == s.stable_hash()


class TestDisplay:
    def test_str_compact(self):
        assert str(comp_signature("gemm", 4, 5, 6)) == "gemm(4,5,6)"

    def test_repr_roundtrip_fields(self):
        s = comm_signature("bcast", 128, 8, 2)
        assert "bcast" in repr(s) and "128" in repr(s)


@given(
    name=st.sampled_from(["gemm", "syrk", "trsm", "potrf", "bcast"]),
    params=st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=4),
)
def test_property_intern_and_hash_consistency(name, params):
    a = comp_signature(name, *params)
    b = comp_signature(name, *params)
    assert a is b
    assert a.stable_hash() == b.stable_hash()
    assert str(a).startswith(name)
