"""Analytic BSP models vs simulated execution: do the curves agree?

The paper's Section V derives closed-form BSP costs; the simulator
builds its timings bottom-up from individual kernel costs.  If the
substrate is sound, the two must rank configurations consistently —
this is the deepest internal-consistency check the reproduction has.
"""

import pytest

from repro.algorithms.candmc_qr import CandmcQRConfig, candmc_qr
from repro.algorithms.capital_cholesky import CapitalCholeskyConfig, capital_cholesky
from repro.bsp import candmc_qr_bsp, capital_cholesky_bsp
from repro.sim import Machine, NoiseModel, Simulator


def spearman(xs, ys):
    """Spearman rank correlation (no scipy.stats dependence needed)."""
    def ranks(v):
        order = sorted(range(len(v)), key=v.__getitem__)
        r = [0] * len(v)
        for i, o in enumerate(order):
            r[o] = i
        return r

    rx, ry = ranks(xs), ranks(ys)
    n = len(xs)
    d2 = sum((a - b) ** 2 for a, b in zip(rx, ry))
    return 1 - 6 * d2 / (n * (n * n - 1))


class TestCapitalAgreement:
    """The analytic model has unit constants — the paper itself warns
    that "constant factors associated with these costs ... makes a
    range of block sizes and processor grids viable", so raw times
    cannot be compared.  What must agree are the asymptotic regimes:
    both model and simulation prefer large blocks when latency
    dominates and small blocks when (redundant base-case) computation
    dominates."""

    def test_compute_regime_prefers_small_blocks_in_both(self):
        n, c = 256, 2
        # gamma cranked: the n*b^2 redundant base-case flops dominate
        machine = Machine(nprocs=8, gamma=5e-8, alpha=1e-8, beta=1e-12, seed=0)
        quiet = NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0)
        sim_t, mod_t = [], []
        for b in (4, 64):
            cfg = CapitalCholeskyConfig(n=n, block=b, c=c, base_strategy=2)
            sim_t.append(Simulator(machine, noise=quiet).run(
                capital_cholesky, args=(cfg,)).makespan)
            mod_t.append(capital_cholesky_bsp(n, b, 8).time(
                machine.alpha, machine.beta, machine.gamma))
        assert sim_t[0] < sim_t[1]
        assert mod_t[0] < mod_t[1]

    def test_latency_regime_prefers_big_blocks_in_both(self):
        # crank alpha so latency dominates: both the model and the
        # simulation must then prefer the largest block
        n, c = 256, 2
        machine = Machine(nprocs=8, alpha=5e-4, seed=0)
        quiet = NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0)
        blocks = [4, 64]
        sim_t, mod_t = [], []
        for b in blocks:
            cfg = CapitalCholeskyConfig(n=n, block=b, c=c, base_strategy=2)
            sim_t.append(Simulator(machine, noise=quiet).run(
                capital_cholesky, args=(cfg,)).makespan)
            mod_t.append(capital_cholesky_bsp(n, b, 8).time(
                machine.alpha, machine.beta, machine.gamma))
        assert sim_t[1] < sim_t[0]
        assert mod_t[1] < mod_t[0]


class TestCandmcAgreement:
    def test_model_ranks_block_sizes_like_simulation(self):
        m, n, pr, pc = 512, 64, 2, 2
        machine = Machine(nprocs=4, seed=0)
        quiet = NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0)
        blocks = [2, 4, 8, 16]
        simulated, modeled = [], []
        for b in blocks:
            cfg = CandmcQRConfig(m=m, n=n, b=b, pr=pr, pc=pc)
            simulated.append(Simulator(machine, noise=quiet).run(
                candmc_qr, args=(cfg,)).makespan)
            modeled.append(candmc_qr_bsp(m, n, b, pr, pc).time(
                machine.alpha, machine.beta, machine.gamma))
        rho = spearman(simulated, modeled)
        assert rho > 0.6, (simulated, modeled)
