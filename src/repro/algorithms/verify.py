"""Numeric verification of the distributed schedules against numpy.

Each algorithm's data-carrying mode returns per-rank results from the
simulation; these helpers reassemble global factors and check the
defining identities:

* Cholesky: ``L L^T = A`` (and ``L^-1 L = I`` for Capital),
* QR: replaying the recorded compact-WY transforms on the original
  matrix reproduces the assembled ``R`` (equivalently ``Q^T A = R``
  with an exactly orthogonal ``Q``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.algorithms.candmc_qr import CandmcQRConfig
from repro.algorithms.slate_cholesky import SlateCholeskyConfig
from repro.algorithms.slate_qr import SlateQRConfig
from repro.kernels import lapack

__all__ = [
    "random_spd",
    "random_matrix",
    "assemble_tiles",
    "check_capital_cholesky",
    "check_slate_cholesky",
    "check_candmc_qr",
    "check_slate_qr",
]


def random_spd(n: int, seed: int = 0) -> np.ndarray:
    """A well-conditioned random SPD matrix."""
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((n, n))
    return b @ b.T / n + np.eye(n) * n ** 0.5


def random_matrix(m: int, n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, n))


def assemble_tiles(
    returns: Sequence[Dict[Tuple[int, int], np.ndarray]],
    m: int,
    n: int,
    nb: int,
) -> np.ndarray:
    """Reassemble a global matrix from per-rank tile dictionaries."""
    out = np.zeros((m, n))
    for tiles in returns:
        if not tiles:
            continue
        for key, blk in tiles.items():
            # skip non-tile bookkeeping entries (e.g. in-flight markers)
            if not (isinstance(key, tuple) and len(key) == 2
                    and isinstance(key[0], int)):
                continue
            i, j = key
            r0 = i * nb
            c0 = j * nb
            out[r0:r0 + blk.shape[0], c0:c0 + blk.shape[1]] = blk
    return out


def check_capital_cholesky(result, a: np.ndarray, tol: float = 1e-8) -> float:
    """Validate Capital's (L, L^-1) result; returns the max residual."""
    l_mat, v_mat = result
    n = a.shape[0]
    l_tril = np.tril(l_mat)
    res_f = np.linalg.norm(l_tril @ l_tril.T - a) / np.linalg.norm(a)
    res_i = np.linalg.norm(np.tril(v_mat) @ l_tril - np.eye(n))
    if res_f > tol or res_i > tol:
        raise AssertionError(
            f"Capital Cholesky residuals too large: ||LL^T-A||={res_f:.2e}, "
            f"||L^-1 L - I||={res_i:.2e}"
        )
    return max(res_f, res_i)


def check_slate_cholesky(
    returns, config: SlateCholeskyConfig, a: np.ndarray, tol: float = 1e-8
) -> float:
    """Validate SLATE potrf output tiles; returns the relative residual."""
    l_mat = np.tril(assemble_tiles(returns, config.n, config.n, config.nb))
    res = np.linalg.norm(l_mat @ l_mat.T - a) / np.linalg.norm(a)
    if res > tol:
        raise AssertionError(f"SLATE Cholesky residual {res:.2e} > {tol:g}")
    return res


def check_candmc_qr(
    returns, config: CandmcQRConfig, a: np.ndarray, tol: float = 1e-8
) -> float:
    """Validate CANDMC QR: replayed Q^T A equals the assembled R."""
    b = config.b
    blocks: Dict[Tuple[int, int], np.ndarray] = {}
    logs: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
    for ret in returns:
        if ret is None:
            continue
        blk, log = ret
        blocks.update(blk)
        logs.update(log)
    r_mat = np.zeros((config.m, config.n))
    for (rb, cb), v in blocks.items():
        r_mat[rb * b:(rb + 1) * b, cb * b:(cb + 1) * b] = v
    # replay panel transforms in order on a copy of A
    work = a.astype(float).copy()
    for j in range(config.n // b):
        y, t, _r = logs[j]
        rows = slice(j * b, config.m)
        work[rows, :] = lapack.apply_qt(y, t, work[rows, :])
    res = np.linalg.norm(np.triu(work) - np.triu(r_mat)) / np.linalg.norm(a)
    sub = np.linalg.norm(np.tril(work, -1)) / np.linalg.norm(a)
    if res > tol or sub > tol:
        raise AssertionError(
            f"CANDMC QR residuals too large: ||Q^T A - R||={res:.2e}, "
            f"||below-diag||={sub:.2e}"
        )
    return max(res, sub)


def check_slate_qr(
    returns, config: SlateQRConfig, a: np.ndarray, tol: float = 1e-8
) -> float:
    """Validate SLATE geqrf: replayed transforms reproduce the tile R."""
    nb = config.nb
    tiles: Dict[Tuple[int, int], np.ndarray] = {}
    logs: List[Tuple[str, int, int, np.ndarray, np.ndarray]] = []
    for ret in returns:
        if ret is None:
            continue
        t, log = ret
        tiles.update({k: v for k, v in t.items() if isinstance(k, tuple)})
        logs.extend(log)
    logs.sort(key=lambda e: (e[1], 0 if e[0] == "geqrt" else 1, e[2]))
    r_mat = assemble_tiles([tiles], config.m, config.n, nb)

    work = a.astype(float).copy()
    for kind, k, i, y, t in logs:
        tnk = min(nb, config.n - k * nb)
        c0 = k * nb
        if kind == "geqrt":
            rows = np.arange(k * nb, min((k + 1) * nb, config.m))
        else:
            top = np.arange(k * nb, k * nb + tnk)
            bot = np.arange(i * nb, min((i + 1) * nb, config.m))
            rows = np.concatenate([top, bot])
        work[np.ix_(rows, np.arange(c0, config.n))] = lapack.apply_qt(
            y, t, work[np.ix_(rows, np.arange(c0, config.n))]
        )
    res = np.linalg.norm(work - r_mat) / np.linalg.norm(a)
    if res > tol:
        raise AssertionError(f"SLATE QR residual {res:.2e} > {tol:g}")
    return res
