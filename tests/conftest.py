"""Shared fixtures: machines, noise models, and miniature tuning spaces."""

from __future__ import annotations

import pytest

from repro.sim import Machine, NoiseModel, Simulator


@pytest.fixture
def machine4() -> Machine:
    """A 4-rank machine with default (noisy) timing."""
    return Machine(nprocs=4, seed=7)


@pytest.fixture
def machine8() -> Machine:
    return Machine(nprocs=8, seed=7)


@pytest.fixture
def quiet_noise() -> NoiseModel:
    """Noise disabled: kernel timings equal their analytic base cost."""
    return NoiseModel(bias_sigma=0.0, comp_cv=0.0, comm_cv=0.0, run_cv=0.0)


@pytest.fixture
def quiet_sim(machine4, quiet_noise) -> Simulator:
    """Deterministic, noise-free 4-rank simulator."""
    return Simulator(machine4, noise=quiet_noise)


def make_quiet_sim(nprocs: int, profiler=None, **mkw) -> Simulator:
    """Helper for tests needing other rank counts."""
    m = Machine(nprocs=nprocs, seed=mkw.pop("seed", 0), **mkw)
    return Simulator(
        m,
        noise=NoiseModel(bias_sigma=0.0, comp_cv=0.0, comm_cv=0.0, run_cv=0.0),
        profiler=profiler,
    )
