"""Op descriptor basics and the Request lifecycle."""

import pytest

from repro.kernels.blas import gemm_spec
from repro.sim.ops import (
    COLLECTIVES,
    CollOp,
    ComputeOp,
    P2POp,
    Request,
    SplitOp,
    WaitOp,
)


class TestDescriptors:
    def test_collective_names_cover_machine_model(self):
        from repro.sim.machine import CollectiveCosts

        cc = CollectiveCosts(1e-6, 1e-9)
        for name in COLLECTIVES:
            assert cc.cost(name, 64, 4) >= 0

    def test_compute_op_fields(self):
        sig, flops = gemm_spec(4, 4, 4)
        op = ComputeOp(sig=sig, flops=flops, fn=None, args=())
        assert op.sig is sig and op.flops == 128

    def test_request_defaults(self):
        r = Request(rank=2, kind="irecv")
        assert not r.done
        assert r.completion == 0.0
        assert r.value is None

    def test_wait_op_modes(self):
        r = Request(rank=0, kind="isend")
        assert WaitOp([r], mode="one").mode == "one"
        assert WaitOp([r, r]).mode == "all"

    def test_p2p_op_defaults(self):
        op = P2POp("send", None, 3)
        assert op.tag == 0 and op.nbytes == 0

    def test_coll_op_defaults(self):
        op = CollOp("bcast", None)
        assert op.root == 0 and op.payload is None

    def test_split_op(self):
        op = SplitOp(None, color=None, key=5)
        assert op.color is None and op.key == 5
