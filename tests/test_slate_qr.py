"""SLATE tiled QR: numeric correctness, inner blocking, exclusions."""

import numpy as np
import pytest

from repro.algorithms import verify
from repro.algorithms.slate_qr import SlateQRConfig, slate_qr
from repro.critter import Critter
from repro.sim import Machine, NoiseModel, Simulator, TraceRecorder


def run_numeric(m, n, nb, w, pr, pc, seed=7):
    cfg = SlateQRConfig(m=m, n=n, nb=nb, w=w, pr=pr, pc=pc)
    a = verify.random_matrix(m, n, seed=seed)
    mac = Machine(nprocs=cfg.nprocs, seed=0)
    res = Simulator(mac).run(slate_qr, args=(cfg, a), run_seed=1)
    return res, cfg, a


class TestNumericCorrectness:
    @pytest.mark.parametrize("nb,w", [(16, 4), (16, 8), (16, 16), (8, 4)])
    def test_tile_and_inner_blocking(self, nb, w):
        res, cfg, a = run_numeric(64, 32, nb, w, 2, 2)
        verify.check_slate_qr(res.returns, cfg, a)

    @pytest.mark.parametrize("pr,pc", [(4, 1), (1, 4), (2, 2)])
    def test_grid_shapes(self, pr, pc):
        res, cfg, a = run_numeric(64, 32, 16, 8, pr, pc)
        verify.check_slate_qr(res.returns, cfg, a)

    def test_ragged_tiles(self):
        res, cfg, a = run_numeric(60, 28, 16, 8, 2, 2)
        verify.check_slate_qr(res.returns, cfg, a)

    def test_tall_matrix(self):
        res, cfg, a = run_numeric(128, 32, 16, 8, 2, 2)
        verify.check_slate_qr(res.returns, cfg, a)

    def test_r_upper_triangular(self):
        res, cfg, a = run_numeric(64, 32, 16, 8, 2, 2)
        tiles = {}
        for ret in res.returns:
            if ret:
                tiles.update({k: v for k, v in ret[0].items() if isinstance(k, tuple)})
        r = verify.assemble_tiles([tiles], 64, 32, 16)
        assert np.allclose(np.tril(r, -1), 0, atol=1e-9)


class TestInnerBlocking:
    def _trace(self, w, nb=16, m=64, n=32):
        cfg = SlateQRConfig(m=m, n=n, nb=nb, w=w, pr=2, pc=2)
        mac = Machine(nprocs=4, seed=0)
        tr = TraceRecorder()
        sim = Simulator(mac, noise=NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0),
                        trace=tr)
        sim.run(slate_qr, args=(cfg,))
        return tr

    def test_smaller_w_more_panel_kernels(self):
        n4 = sum(1 for e in self._trace(4).by_kind("comp") if e.sig.name == "geqr2")
        n16 = sum(1 for e in self._trace(16).by_kind("comp") if e.sig.name == "geqr2")
        assert n4 == 4 * (n16 / 1) or n4 > n16  # 4x chunks for w=4 vs w=16

    def test_kernel_mix(self):
        names = {e.sig.name for e in self._trace(8).by_kind("comp")}
        assert {"geqr2", "larfb", "tpqrt", "tpmqrt"} <= names

    def test_only_p2p(self):
        tr = self._trace(8)
        assert len(tr.by_kind("coll")) == 0


class TestExclusion:
    def test_geqr2_never_skipped(self):
        # the paper does not selectively execute SLATE QR's BLAS-2 panel
        # kernels; the space passes exclude={"geqr2"}
        cfg = SlateQRConfig(m=64, n=32, nb=16, w=4, pr=2, pc=2)
        mac = Machine(nprocs=4, seed=0)
        cr = Critter(policy="conditional", eps=0.9, exclude=frozenset({"geqr2"}))
        tr = TraceRecorder()
        for rep in range(3):
            Simulator(mac, profiler=cr, trace=tr).run(slate_qr, args=(cfg,), run_seed=rep)
        geqr2 = [e for e in tr.by_kind("comp") if e.sig.name == "geqr2"]
        assert geqr2 and all(e.executed for e in geqr2)
        # other kernels did get skipped
        assert tr.skipped_count() > 0

    def test_selective_execution_preserves_numerics(self):
        cfg = SlateQRConfig(m=64, n=32, nb=16, w=8, pr=2, pc=2)
        a = verify.random_matrix(64, 32, seed=3)
        mac = Machine(nprocs=4, seed=0)
        cr = Critter(policy="conditional", eps=0.5)
        res = None
        for rep in range(3):
            res = Simulator(mac, profiler=cr, execute_skipped_fns=True).run(
                slate_qr, args=(cfg, a), run_seed=rep
            )
        assert cr.last_report.skipped_kernels > 0
        verify.check_slate_qr(res.returns, cfg, a)
