"""Golden-makespan regression: the engine's bit-identity contract.

``tests/golden/engine_golden.json`` pins ``SimResult.makespan`` and
``rank_times`` (exact ``float.hex``) plus Critter's executed/skipped
kernel counts for every machine preset x selective-execution policy
across the four algorithm spaces and a synthetic p2p/wait/split
workload — captured on the engine *before* the run-to-completion fast
path existed.

Both schedulers must reproduce the fixtures bit-for-bit: the fast path
may not change a single RNG draw or timing, and the naive path must
remain exactly the pre-refactor scheduler.  Any future engine change
that shifts one float here is a behavioral change and needs a
deliberate fixture regeneration (``python tests/golden_workloads.py
--write``) with justification.
"""

from __future__ import annotations

import pytest

from golden_workloads import GOLDEN_PATH, golden_cases, load_golden, run_case

GOLDEN = load_golden()
CASES = golden_cases()
CASE_IDS = [c["id"] for c in CASES]


def test_fixture_covers_all_cases():
    assert sorted(GOLDEN) == sorted(CASE_IDS)


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_golden_fast_path(case):
    assert run_case(case)["runs"] == GOLDEN[case["id"]]["runs"], (
        f"fast-path results diverged from {GOLDEN_PATH}"
    )


@pytest.mark.parametrize("case", CASES, ids=CASE_IDS)
def test_golden_naive_scheduler(case):
    assert run_case(case, fast_path=False)["runs"] == GOLDEN[case["id"]]["runs"], (
        f"naive-scheduler results diverged from {GOLDEN_PATH}"
    )
