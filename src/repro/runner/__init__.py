"""Experiment runner: jobs, executors, caching, and progress reporting.

The experiment drivers (:mod:`repro.autotune.tuner`,
:mod:`repro.autotune.sweep`, :mod:`repro.autotune.search`) describe
their measurements as :class:`RunRequest` batches and submit them to a
:class:`Runner`, which layers a content-addressed disk cache and a
serial, process-pool, or fault-tolerant executor underneath.  Results
are bit-identical across executors; see :mod:`repro.runner.jobs` for
why.  The fault-tolerance layer (:mod:`repro.runner.resilience`,
:mod:`repro.runner.faults`, :mod:`repro.runner.manifest`) adds
retry/timeout/quarantine semantics, deterministic fault injection for
testing them, and resumable sweep manifests.  The durable result store
(:mod:`repro.runner.store`) is the default cache: checksummed entries,
256-way sharding, LRU size bounding, and compute-through degradation
when storage itself fails.
"""

from repro.runner.cache import ResultCache
from repro.runner.executors import (
    ParallelExecutor,
    Runner,
    RunnerError,
    SerialExecutor,
    make_runner,
)
from repro.runner.faults import (
    FaultPlan,
    FaultSpec,
    FSFaultPlan,
    InjectedFault,
    active_fs_plan,
    install_fs,
)
from repro.runner.jobs import (
    GROUND_TRUTH,
    TUNE_CONFIG,
    TUNE_PASS,
    ConfigResult,
    GroundTruthResult,
    JobExecutionError,
    RunRequest,
    RunResult,
    execute_request,
    failed_result,
    request_fingerprint,
    request_key,
    seed_for,
)
from repro.runner.manifest import ManifestError, SweepManifest
from repro.runner.progress import (
    LOGGER_NAME,
    ProgressCallback,
    RunEvent,
    logging_progress,
)
from repro.runner.resilience import ResilientExecutor, RetryPolicy
from repro.runner.seeds import derive_seed, derive_unit
from repro.runner.store import (
    ComputeThroughCache,
    DegradedCacheError,
    ShardedResultCache,
    fsync_directory,
    quarantine_entry,
    write_atomic,
)

__all__ = [
    "GROUND_TRUTH",
    "TUNE_CONFIG",
    "TUNE_PASS",
    "RunRequest",
    "RunResult",
    "GroundTruthResult",
    "ConfigResult",
    "JobExecutionError",
    "seed_for",
    "derive_seed",
    "derive_unit",
    "execute_request",
    "failed_result",
    "request_fingerprint",
    "request_key",
    "ResultCache",
    "ShardedResultCache",
    "ComputeThroughCache",
    "DegradedCacheError",
    "write_atomic",
    "fsync_directory",
    "quarantine_entry",
    "SerialExecutor",
    "ParallelExecutor",
    "ResilientExecutor",
    "RetryPolicy",
    "Runner",
    "RunnerError",
    "make_runner",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "FSFaultPlan",
    "install_fs",
    "active_fs_plan",
    "SweepManifest",
    "ManifestError",
    "RunEvent",
    "ProgressCallback",
    "logging_progress",
    "LOGGER_NAME",
]
