"""mpi4py-flavoured communicator API for rank programs.

Rank programs receive a :class:`Comm` and *yield* the descriptors its
methods build::

    def program(comm):
        sub = yield comm.split(color=comm.rank % 2, key=comm.rank)
        data = yield comm.bcast(payload, root=0, nbytes=1024)
        yield comm.compute(spec, fn=np.linalg.cholesky, args=(a,))
        req = yield comm.isend(tile, dest=1, tag=7, nbytes=tile.nbytes)
        yield comm.wait(req)

Method names deliberately mirror mpi4py's lowercase object API (see the
mpi4py tutorial); ``nbytes`` must be given explicitly in symbolic
(cost-only) mode where no real payload exists.
"""

from __future__ import annotations

import array as _array
from typing import Any, Callable, Optional, Sequence, Tuple

import numpy as np

from repro.kernels.signature import KernelSignature
from repro.sim.ops import (
    CollOp,
    ComputeBatchOp,
    ComputeOp,
    ComputeRunOp,
    P2POp,
    Request,
    SplitOp,
    WaitOp,
)

__all__ = ["Comm", "payload_nbytes"]


def _nonnegative_nbytes(nbytes: Any) -> int:
    """Validate an explicit size at op-build time.

    A negative ``nbytes`` would otherwise flow into the cost model and
    produce negative communication costs (time running backwards) long
    after the buggy call site — fail fast where the op is built.
    """
    nbytes = int(nbytes)
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    return nbytes


def payload_nbytes(payload: Any, nbytes: Optional[int]) -> int:
    """Infer a payload's size in bytes, preferring an explicit value."""
    if nbytes is not None:
        return _nonnegative_nbytes(nbytes)
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, memoryview):
        # like bytes/bytearray, but sized via .nbytes: len() counts
        # elements of the view's format, not bytes
        return payload.nbytes
    if isinstance(payload, _array.array):
        return len(payload) * payload.itemsize
    if isinstance(payload, np.generic):
        # numpy scalars (np.float32(1.0), np.int16(3), ...) know their
        # own width; the generic 8-byte fallback below would mis-size
        # every non-64-bit dtype
        return int(payload.nbytes)
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(p, None) for p in payload)
    if isinstance(payload, (int, float)):
        return 8
    raise TypeError(
        f"cannot infer nbytes for payload of type {type(payload).__name__}; "
        "pass nbytes= explicitly"
    )


class Comm:
    """A rank's view of a communicator.

    ``group`` is the engine-side :class:`~repro.sim.engine.CommGroup`
    shared by all members; ``rank`` is this process's rank *within* the
    communicator.
    """

    __slots__ = ("group", "rank")

    def __init__(self, group: Any, rank: int) -> None:
        self.group = group
        self.rank = rank

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.group.size

    @property
    def world_rank(self) -> int:
        """This process's rank in MPI_COMM_WORLD."""
        return self.group.world_ranks[self.rank]

    @property
    def world_ranks(self) -> Tuple[int, ...]:
        return self.group.world_ranks

    def translate(self, rank: int) -> int:
        """Translate a rank local to this communicator to a world rank."""
        return self.group.world_ranks[rank]

    def __repr__(self) -> str:
        return f"Comm(id={self.group.gid}, rank={self.rank}/{self.size})"

    # -- computation -----------------------------------------------------
    def compute(
        self,
        spec: Any,
        fn: Optional[Callable[..., Any]] = None,
        args: Tuple[Any, ...] = (),
    ) -> ComputeOp:
        """Build a computational-kernel op.

        ``spec`` is either a ``(sig, flops)`` pair (as produced by the
        builders in :mod:`repro.kernels.blas` / ``lapack``) or a
        :class:`KernelSignature` with ``flops`` passed via a 2-tuple.
        """
        sig, flops = spec
        if not isinstance(sig, KernelSignature):
            raise TypeError("compute() expects a (KernelSignature, flops) spec")
        return ComputeOp(sig=sig, flops=float(flops), fn=fn, args=args)

    def compute_batch(
        self,
        spec: Any,
        count: int,
        fn: Optional[Callable[..., Any]] = None,
        args: Tuple[Any, ...] = (),
    ) -> ComputeBatchOp:
        """``count`` identical-signature kernels as one engine event.

        With the machine model's ``batched_compute`` flag off (the
        default) this is bit-identical to yielding ``count`` copies of
        ``self.compute(spec)``; with it on, the engine charges one
        aggregate kernel with a single noise draw.  See
        :class:`~repro.sim.ops.ComputeBatchOp`.
        """
        sig, flops = spec
        if not isinstance(sig, KernelSignature):
            raise TypeError("compute_batch() expects a (KernelSignature, flops) spec")
        count = int(count)
        if count < 1:
            raise ValueError(f"compute_batch() requires count >= 1, got {count}")
        return ComputeBatchOp(sig=sig, flops=float(flops), count=count,
                              fn=fn, args=args)

    def compute_run(
        self,
        segments: Sequence[Tuple[Any, int]],
        fn: Optional[Callable[..., Any]] = None,
        args: Tuple[Any, ...] = (),
    ) -> ComputeRunOp:
        """A columnar run of compute segments as one engine event.

        ``segments`` is a sequence of ``(spec, count)`` pairs, each
        ``spec`` a ``(KernelSignature, flops)`` pair as accepted by
        :meth:`compute`.  Equivalent to yielding every segment's
        ``count`` kernels individually (or as per-segment
        :meth:`compute_batch` ops); see :class:`~repro.sim.ops.ComputeRunOp`
        for the batched/expanded semantics.
        """
        if not segments:
            raise ValueError("compute_run() requires at least one segment")
        sigs = []
        flops = []
        counts = []
        for spec, count in segments:
            sig, f = spec
            if not isinstance(sig, KernelSignature):
                raise TypeError(
                    "compute_run() expects (KernelSignature, flops) specs")
            count = int(count)
            if count < 1:
                raise ValueError(
                    f"compute_run() requires count >= 1, got {count}")
            sigs.append(sig)
            flops.append(float(f))
            counts.append(count)
        return ComputeRunOp(sigs=tuple(sigs), flops=tuple(flops),
                            counts=tuple(counts), fn=fn, args=args)

    def region(
        self,
        name: str,
        *params: int,
        flops: float,
        fn: Optional[Callable[..., Any]] = None,
        args: Tuple[Any, ...] = (),
    ) -> ComputeOp:
        """Declare a custom code-region kernel.

        Mirrors Critter's preprocessor-directive API that "allows
        library developers to selectively execute loop nests and other
        structures": the region becomes a computational kernel with its
        own signature (name + parameters) and estimated work, eligible
        for statistical profiling and selective execution like any
        BLAS/LAPACK call.
        """
        from repro.kernels.signature import comp_signature

        return ComputeOp(sig=comp_signature(name, *params),
                         flops=float(flops), fn=fn, args=args)

    # -- point-to-point ----------------------------------------------------
    def send(self, payload: Any = None, dest: int = 0, tag: int = 0,
             nbytes: Optional[int] = None) -> P2POp:
        return P2POp("send", self, dest, tag, payload, payload_nbytes(payload, nbytes))

    def recv(self, source: int = 0, tag: int = 0, nbytes: Optional[int] = None) -> P2POp:
        """Blocking receive.

        ``nbytes`` is the size the receiver *expects*; ``None`` (the
        default) means unknown.  The transfer is always costed at the
        sender's size; a declared size that disagrees with the matched
        sender's is flagged with a :class:`RuntimeWarning` (an explicit
        ``nbytes=0`` therefore means "I expect an empty message", not
        "unknown").
        """
        return P2POp("recv", self, source, tag, None,
                     None if nbytes is None else _nonnegative_nbytes(nbytes))

    def isend(self, payload: Any = None, dest: int = 0, tag: int = 0,
              nbytes: Optional[int] = None) -> P2POp:
        return P2POp("isend", self, dest, tag, payload, payload_nbytes(payload, nbytes))

    def irecv(self, source: int = 0, tag: int = 0, nbytes: Optional[int] = None) -> P2POp:
        """Nonblocking receive; ``nbytes`` semantics as for :meth:`recv`."""
        return P2POp("irecv", self, source, tag, None,
                     None if nbytes is None else _nonnegative_nbytes(nbytes))

    def wait(self, request: Request) -> WaitOp:
        return WaitOp([request], mode="one")

    def waitall(self, requests: Sequence[Request]) -> WaitOp:
        """MPI_Waitall; an empty request list resumes immediately with ``[]``."""
        return WaitOp(list(requests), mode="all")

    def waitany(self, requests: Sequence[Request]) -> WaitOp:
        """MPI_Waitany: resume on the first completion; yields (index, value).

        An empty request list is rejected at build time: unlike waitall
        (whose empty case trivially resolves to ``[]``), waitany has no
        winner to report and would otherwise park the rank forever.
        """
        requests = list(requests)
        if not requests:
            raise ValueError("waitany requires at least one request")
        return WaitOp(requests, mode="any")

    # -- collectives --------------------------------------------------------
    def bcast(self, payload: Any = None, root: int = 0,
              nbytes: Optional[int] = None) -> CollOp:
        return CollOp("bcast", self, root, payload, payload_nbytes(payload, nbytes))

    def reduce(self, payload: Any = None, root: int = 0,
               nbytes: Optional[int] = None) -> CollOp:
        return CollOp("reduce", self, root, payload, payload_nbytes(payload, nbytes))

    def allreduce(self, payload: Any = None, nbytes: Optional[int] = None) -> CollOp:
        return CollOp("allreduce", self, 0, payload, payload_nbytes(payload, nbytes))

    def gather(self, payload: Any = None, root: int = 0,
               nbytes: Optional[int] = None) -> CollOp:
        return CollOp("gather", self, root, payload, payload_nbytes(payload, nbytes))

    def allgather(self, payload: Any = None, nbytes: Optional[int] = None) -> CollOp:
        return CollOp("allgather", self, 0, payload, payload_nbytes(payload, nbytes))

    def scatter(self, payload: Any = None, root: int = 0,
                nbytes: Optional[int] = None) -> CollOp:
        """``payload`` at root is a list of ``size`` chunks; ``nbytes`` is per-chunk."""
        if payload is not None and nbytes is None:
            nbytes = payload_nbytes(payload, None) // max(self.size, 1)
        return CollOp("scatter", self, root, payload,
                      _nonnegative_nbytes(nbytes or 0))

    def alltoall(self, payload: Any = None, nbytes: Optional[int] = None) -> CollOp:
        """``payload`` is a list of ``size`` per-peer chunks; ``nbytes`` is per-peer."""
        if payload is not None and nbytes is None:
            nbytes = payload_nbytes(payload, None) // max(self.size, 1)
        return CollOp("alltoall", self, 0, payload,
                      _nonnegative_nbytes(nbytes or 0))

    def barrier(self) -> CollOp:
        return CollOp("barrier", self, 0, None, 0)

    # -- communicator management ---------------------------------------------
    def split(self, color: Optional[int], key: int = 0) -> SplitOp:
        """Split this communicator; ``color=None`` means MPI_UNDEFINED."""
        return SplitOp(self, color, int(key))
