"""Kernel signatures: the identity under which performance is modeled.

The paper (Section III.A) assumes "an executed kernel's measured
performance is a random variable drawn from a distribution that is the
same for all kernels with a given signature (i.e., program function for
a given input size)".  Section V.D specifies the parameterization used
for the dense linear algebra studies:

* computational kernels are parameterized on the routine name, matrix
  dimensions, and other BLAS parameters such as transposition flags;
* communication kernels are parameterized on message size as well as
  the MPI sub-communicator *size* and *stride* relative to the world
  communicator; point-to-point configurations are treated as size-2
  sub-communicators.

Signatures are **interned**: the factory functions return the same
object for the same (kind, name, params), so the millions of dictionary
operations Critter performs on them hit the identity fast path, and
each signature's hash is computed exactly once.

Signatures must also hash identically across runs and across Python
processes (Python's builtin ``hash`` is salted for strings), so a CRC32
``stable_hash`` is provided and used everywhere determinism matters
(noise seeding, channel hashing).
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Tuple

__all__ = [
    "KernelSignature",
    "comp_signature",
    "comm_signature",
    "p2p_signature",
    "stable_hash",
]


def stable_hash(obj: object) -> int:
    """A deterministic 32-bit hash of ``repr(obj)``.

    Used for seeding per-signature RNG streams and for channel ids;
    unlike ``hash()`` it is stable across interpreter invocations.
    """
    return zlib.crc32(repr(obj).encode("utf-8")) & 0xFFFFFFFF


#: (kind, name, params) -> canonical instance; populated by
#: ``KernelSignature.__new__``
_INTERN: Dict[Tuple[str, str, Tuple[int, ...]], "KernelSignature"] = {}


class KernelSignature:
    """Identity of a kernel: routine + input configuration.

    Construction interns: ``KernelSignature(kind, name, params)``
    returns *the* canonical instance for that identity, so object
    identity coincides with value equality and the class needs no
    ``__eq__``/``__hash__`` of its own — every dictionary operation on a
    signature (Critter performs millions per run) uses the C-level
    identity hash instead of a Python-level method call.

    Attributes
    ----------
    kind:
        ``"comp"`` for computational kernels (BLAS/LAPACK/user code
        regions), ``"comm"`` for communication kernels (MPI routines).
    name:
        Routine name, e.g. ``"gemm"`` or ``"bcast"``.
    params:
        For ``comp``: the dimension tuple (plus any flags) of the call.
        For ``comm``: ``(nbytes, comm_size, comm_stride)`` following the
        paper's parameterization.
    """

    __slots__ = ("kind", "name", "params", "_stable")

    def __new__(cls, kind: str, name: str, params: Tuple[int, ...]) -> "KernelSignature":
        key = (kind, name, params)
        sig = _INTERN.get(key)
        if sig is None:
            sig = super().__new__(cls)
            sig.kind = kind
            sig.name = name
            sig.params = params
            sig._stable = -1
            _INTERN[key] = sig
        return sig

    def __reduce__(self) -> Tuple[Any, ...]:
        # unpickle through the interner so identity semantics survive
        # serialization
        return (KernelSignature, (self.kind, self.name, self.params))

    def __repr__(self) -> str:
        return f"KernelSignature({self.kind!r}, {self.name!r}, {self.params!r})"

    def stable_hash(self) -> int:
        """Deterministic cross-process hash (cached)."""
        if self._stable < 0:
            self._stable = stable_hash((self.kind, self.name, self.params))
        return self._stable

    @property
    def is_comm(self) -> bool:
        return self.kind == "comm"

    @property
    def is_comp(self) -> bool:
        return self.kind == "comp"

    def __str__(self) -> str:  # compact display for reports
        p = ",".join(str(x) for x in self.params)
        return f"{self.name}({p})"


def comp_signature(name: str, *params: int) -> KernelSignature:
    """Signature of a computational kernel, e.g. ``comp_signature("gemm", m, n, k)``."""
    return KernelSignature("comp", name, tuple(int(p) for p in params))


def comm_signature(name: str, nbytes: int, comm_size: int, comm_stride: int) -> KernelSignature:
    """Signature of a communication kernel.

    Parameters mirror the paper: message size in bytes plus the
    sub-communicator size and its stride relative to ``MPI_COMM_WORLD``.
    Point-to-point routines pass ``comm_size=2`` and the rank distance
    as the stride.
    """
    return KernelSignature("comm", name, (int(nbytes), int(comm_size), int(comm_stride)))


#: (nbytes, stride) -> interned p2p signature — the rendezvous match
#: path constructs the same handful of signatures once per event, so a
#: direct two-int memo skips the generic interner's params-tuple build
_P2P_SIGS: Dict[Tuple[int, int], KernelSignature] = {}


def p2p_signature(nbytes: int, stride: int) -> KernelSignature:
    """Interned ``p2p`` signature for a matched send/recv pair.

    Equivalent to ``comm_signature("p2p", nbytes, 2, stride)`` — the
    paper treats point-to-point configurations as size-2
    sub-communicators — via a memo keyed directly on the two varying
    parameters (the engine's per-event hot path).
    """
    key = (nbytes, stride)
    sig = _P2P_SIGS.get(key)
    if sig is None:
        sig = _P2P_SIGS[key] = comm_signature("p2p", nbytes, 2, stride)
    return sig
