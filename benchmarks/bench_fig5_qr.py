"""Figure 5: approximate autotuning of the two QR factorizations.

Eight panels from the shared sweeps:

* 5a — CANDMC: exhaustive-search time vs. tolerance (paper: overall
        speedup limited to ~1.2x — many distinct kernel signatures from
        the shrinking trailing matrix);
* 5b — SLATE QR: search time vs. tolerance (BLAS-2 panel kernels are
        excluded from selective execution, limiting speedup);
* 5c — CANDMC: max-rank selectively-executed kernel time (paper: 6.6x
        for conditional, a further 3.3x from count propagation);
* 5d — SLATE QR: mean log2 kernel (computation) time prediction error;
* 5e — CANDMC: mean log2 execution-time prediction error (meets the
        requested tolerance);
* 5f — SLATE QR: mean log2 execution-time prediction error;
* 5g — CANDMC: per-configuration execution-time error (online);
* 5h — SLATE QR: per-configuration computation-time error (online).
"""

from __future__ import annotations

import math

import pytest

from bench_fig4_cholesky import (
    emit_per_config,
    emit_policy_series,
    quick_point,
)


def test_fig5a_candmc_search_time(benchmark, candmc_sweep):
    rows = emit_policy_series(
        candmc_sweep, "search_time",
        "Figure 5a — CANDMC QR exhaustive search time (s)",
        "fig5a_candmc_search_time.csv",
        reference=candmc_sweep.full_search_time,
    )
    by_policy = {r[0]: r[1:] for r in rows}
    # selective execution helps but modestly (paper: ~1.2x end-to-end)
    assert by_policy["conditional"][0] < candmc_sweep.full_search_time
    assert all(a >= c * 0.99 for a, c in
               zip(by_policy["apriori"], by_policy["conditional"]))
    benchmark.pedantic(quick_point("candmc_qr"), rounds=1, iterations=1)


def test_fig5b_slate_search_time(benchmark, slate_qr_sweep):
    rows = emit_policy_series(
        slate_qr_sweep, "search_time",
        "Figure 5b — SLATE QR exhaustive search time (s)",
        "fig5b_slate_search_time.csv",
        reference=slate_qr_sweep.full_search_time,
    )
    by_policy = {r[0]: r[1:] for r in rows}
    assert by_policy["conditional"][0] < slate_qr_sweep.full_search_time
    benchmark.pedantic(quick_point("slate_qr"), rounds=1, iterations=1)


def test_fig5c_candmc_kernel_time(benchmark, candmc_sweep):
    rows = emit_policy_series(
        candmc_sweep, "kernel_time",
        "Figure 5c — CANDMC QR max-rank selectively-executed kernel time (s)",
        "fig5c_candmc_kernel_time.csv",
        reference=candmc_sweep.full_kernel_time,
    )
    by_policy = {r[0]: r[1:] for r in rows}
    full = candmc_sweep.full_kernel_time
    cond_speedup = full / by_policy["conditional"][0]
    online_speedup = full / by_policy["online"][0]
    print(f"\nkernel-time speedups at loosest tolerance: conditional "
          f"{cond_speedup:.1f}x, online {online_speedup:.1f}x "
          "(paper: 6.6x and a further 3.3x from count propagation)")
    # kernel-only speedup exceeds the end-to-end one (Fig. 5a vs 5c)
    search_speedup = (candmc_sweep.full_search_time
                      / candmc_sweep.result("conditional",
                                            candmc_sweep.tolerances[0]).search_time)
    assert cond_speedup > search_speedup * 0.9
    # count propagation buys additional kernel-time reduction
    assert online_speedup >= cond_speedup * 0.9
    benchmark.pedantic(quick_point("candmc_qr"), rounds=1, iterations=1)


def test_fig5d_slate_kernel_error(benchmark, slate_qr_sweep):
    rows = emit_policy_series(
        slate_qr_sweep, "mean_log2_comp_error",
        "Figure 5d — SLATE QR mean log2 kernel comp-time prediction error",
        "fig5d_slate_kernel_error.csv",
    )
    by_policy = {r[0]: r[1:] for r in rows}
    # paper: ~1% error down to <0.3% as tolerances tighten
    assert min(by_policy["online"]) < -4.0
    benchmark.pedantic(quick_point("slate_qr"), rounds=1, iterations=1)


def test_fig5e_candmc_exec_error(benchmark, candmc_sweep):
    rows = emit_policy_series(
        candmc_sweep, "mean_log2_exec_error",
        "Figure 5e — CANDMC QR mean log2 exec-time prediction error",
        "fig5e_candmc_exec_error.csv",
    )
    by_policy = {r[0]: r[1:] for r in rows}
    for policy, series in by_policy.items():
        assert series[-1] <= series[0] + 0.75, policy
    benchmark.pedantic(quick_point("candmc_qr"), rounds=1, iterations=1)


def test_fig5f_slate_exec_error(benchmark, slate_qr_sweep):
    emit_policy_series(
        slate_qr_sweep, "mean_log2_exec_error",
        "Figure 5f — SLATE QR mean log2 exec-time prediction error",
        "fig5f_slate_exec_error.csv",
    )
    benchmark.pedantic(quick_point("slate_qr"), rounds=1, iterations=1)


def test_fig5g_candmc_per_config_error(benchmark, candmc_sweep):
    rows = emit_per_config(
        candmc_sweep, "online", (-1, -2, -3, -4), "exec_error",
        "Figure 5g — CANDMC QR per-config exec-time error (online)",
        "fig5g_candmc_per_config_error.csv",
    )
    assert max(r[-1] for r in rows) < 60.0
    benchmark.pedantic(quick_point("candmc_qr"), rounds=1, iterations=1)


def test_fig5h_slate_per_config_error(benchmark, slate_qr_sweep):
    rows = emit_per_config(
        slate_qr_sweep, "online", (-3, -4, -5, -6, -7), "comp_error",
        "Figure 5h — SLATE QR per-config comp-time kernel error (online)",
        "fig5h_slate_per_config_error.csv",
    )
    assert max(r[-1] for r in rows) < 30.0
    benchmark.pedantic(quick_point("slate_qr"), rounds=1, iterations=1)
