"""Noise model: determinism, unit means, and the three noise channels."""

import numpy as np
import pytest

from repro.kernels.signature import comm_signature, comp_signature
from repro.sim.noise import NoiseModel


SIG = comp_signature("gemm", 32, 32, 32)
CSIG = comm_signature("bcast", 1024, 8, 1)


def rng(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


class TestSignatureBias:
    def test_deterministic(self):
        n1 = NoiseModel(machine_seed=3)
        n2 = NoiseModel(machine_seed=3)
        assert n1.signature_bias(SIG) == n2.signature_bias(SIG)

    def test_machine_seed_changes_bias(self):
        assert NoiseModel(machine_seed=1).signature_bias(SIG) != (
            NoiseModel(machine_seed=2).signature_bias(SIG)
        )

    def test_different_sigs_different_bias(self):
        n = NoiseModel(machine_seed=0)
        assert n.signature_bias(SIG) != n.signature_bias(comp_signature("gemm", 16, 16, 16))

    def test_disabled_bias_is_one(self):
        assert NoiseModel(bias_sigma=0.0).signature_bias(SIG) == 1.0

    def test_bias_near_unit_mean(self):
        # over many signatures the normalized lognormal bias should
        # average close to 1 (it's exp(N(0,s) - s^2/2))
        n = NoiseModel(bias_sigma=0.3, machine_seed=5)
        vals = [n.signature_bias(comp_signature("gemm", i, i, i)) for i in range(1, 400)]
        assert abs(np.mean(vals) - 1.0) < 0.05

    def test_cache_hit_consistent(self):
        n = NoiseModel(machine_seed=0)
        assert n.signature_bias(SIG) == n.signature_bias(SIG)


class TestRunDrift:
    def test_deterministic_per_run(self):
        n = NoiseModel(run_cv=0.05)
        assert n.run_drift(SIG, 7) == n.run_drift(SIG, 7)

    def test_varies_with_run(self):
        n = NoiseModel(run_cv=0.05)
        assert n.run_drift(SIG, 7) != n.run_drift(SIG, 8)

    def test_disabled(self):
        assert NoiseModel(run_cv=0.0).run_drift(SIG, 3) == 1.0

    def test_unit_mean_over_runs(self):
        n = NoiseModel(run_cv=0.1)
        vals = [n.run_drift(SIG, s) for s in range(500)]
        assert abs(np.mean(vals) - 1.0) < 0.02


class TestSampling:
    def test_quiet_returns_base(self):
        n = NoiseModel(bias_sigma=0.0, comp_cv=0.0, comm_cv=0.0, run_cv=0.0)
        assert n.sample(SIG, 1.5e-3, rng()) == pytest.approx(1.5e-3)

    def test_sample_mean_converges_to_true_mean(self):
        n = NoiseModel(comp_cv=0.1, run_cv=0.0)
        g = rng(1)
        true = n.true_mean(SIG, 1.0)
        xs = [n.sample(SIG, 1.0, g) for _ in range(4000)]
        assert abs(np.mean(xs) / true - 1.0) < 0.02

    def test_comm_noisier_than_comp(self):
        n = NoiseModel(comp_cv=0.05, comm_cv=0.3, bias_sigma=0.0, run_cv=0.0)
        g1, g2 = rng(2), rng(2)
        comp = np.array([n.sample(SIG, 1.0, g1) for _ in range(2000)])
        comm = np.array([n.sample(CSIG, 1.0, g2) for _ in range(2000)])
        assert comm.std() > 2 * comp.std()

    def test_invocation_cv_dispatch(self):
        n = NoiseModel(comp_cv=0.01, comm_cv=0.5)
        assert n.invocation_cv(SIG) == 0.01
        assert n.invocation_cv(CSIG) == 0.5

    def test_samples_positive(self):
        n = NoiseModel(comp_cv=0.5, bias_sigma=0.5)
        g = rng(3)
        assert all(n.sample(SIG, 1e-6, g) > 0 for _ in range(100))

    def test_quiet_copy(self):
        n = NoiseModel(bias_sigma=0.4, comp_cv=0.2, comm_cv=0.3, run_cv=0.1,
                       machine_seed=9)
        q = n.quiet()
        assert q.machine_seed == 9
        assert q.sample(SIG, 2.0, rng()) == 2.0
