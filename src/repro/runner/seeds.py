"""Deterministic, collision-free seed derivation.

Ad-hoc arithmetic like ``seed * 7919 + 13`` derives correlated or
colliding streams the moment two call sites pick overlapping constants
— and is exactly what the ``seed-derivation`` lint rule flags.  This
module is the sanctioned alternative: every derived stream is keyed by
a sha256 over ``(root seed, *labels)``, so distinct label tuples are
collision-free by construction and the derivation is stable across
platforms and Python versions (no ``hash()`` randomization).

Two primitives cover the repository's needs:

* :func:`derive_seed` — a 63-bit integer seed for an RNG constructor
  (``random.Random``, ``np.random.default_rng``).
* :func:`derive_unit` — a uniform float in ``[0, 1)``, used where a
  single deterministic draw is needed without building a generator
  (retry-backoff jitter, fault-injection sampling).

The blob format is ``":".join(str(part))`` — the format the fault
plan and the retry-backoff jitter already hashed before this module
centralized them, so adopting the helper changed no observable
behavior (CHANGES.md PR 8).
"""

from __future__ import annotations

import hashlib
from typing import Any

__all__ = ["derive_seed", "derive_unit"]


def _digest(parts: tuple) -> bytes:
    blob = ":".join(str(p) for p in parts).encode("utf-8")
    return hashlib.sha256(blob).digest()


def derive_seed(seed: int, *labels: Any) -> int:
    """A 63-bit seed derived from ``(seed, *labels)``.

    Labels are stringified, so any mix of strings and ints works:
    ``derive_seed(base, "random-search")``,
    ``derive_seed(base, "fault", key, attempt)``.  Distinct label
    tuples give independent streams; identical inputs always give the
    identical seed.
    """
    return int.from_bytes(_digest((seed, *labels))[:8], "big") >> 1


def derive_unit(*parts: Any) -> float:
    """A deterministic uniform draw in ``[0, 1)`` keyed on ``parts``."""
    return int.from_bytes(_digest(parts)[:8], "big") / 2.0**64
