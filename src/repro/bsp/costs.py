"""Analytic BSP cost models (Section V) for validating measurements.

The paper states the bulk-synchronous-parallel costs of Capital's
Cholesky and CANDMC's QR; the test suite checks that the simulator's
measured critical-path counters (supersteps, words, flops) scale with
block size and grid shape the way these formulas predict, and the
Fig. 3 benches print them alongside the measured series.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BSPCost", "capital_cholesky_bsp", "candmc_qr_bsp"]


@dataclass(frozen=True, slots=True)
class BSPCost:
    """Leading-order BSP cost terms (unit coefficients).

    ``latency`` counts supersteps (the alpha term), ``bandwidth`` words
    moved along the critical path (beta), ``flops`` operations (gamma).
    """

    latency: float
    bandwidth: float
    flops: float

    def time(self, alpha: float, beta: float, gamma: float) -> float:
        """Evaluate under machine parameters (words assumed 8 bytes)."""
        return (
            alpha * self.latency
            + beta * 8.0 * self.bandwidth
            + gamma * self.flops
        )


def capital_cholesky_bsp(n: int, b: int, p: int) -> BSPCost:
    """Theta(alpha n/b + beta (n^2/p^(2/3) + nb) + gamma (n^3/p + nb^2))."""
    return BSPCost(
        latency=n / b,
        bandwidth=n * n / p ** (2.0 / 3.0) + n * b,
        flops=n**3 / p + n * b * b,
    )


def candmc_qr_bsp(m: int, n: int, b: int, pr: int, pc: int) -> BSPCost:
    """Theta(alpha n/b + beta (mn/pr + n^2/pc + nb)
    + gamma (mn^2/p + nb^2 + mnb/pr + n^2 b/pc))."""
    p = pr * pc
    return BSPCost(
        latency=n / b,
        bandwidth=m * n / pr + n * n / pc + n * b,
        flops=m * n * n / p + n * b * b + m * n * b / pr + n * n * b / pc,
    )
