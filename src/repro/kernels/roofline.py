"""Roofline arithmetic-intensity models for computational kernels.

The roofline model (Williams et al.; applied to autotuning cost models
by Tørring et al.) prices a kernel as the *slower* of its compute and
memory ceilings: ``max(flops / peak_flops, bytes / peak_bw)``.  The
flop counts already live in the ``*_spec`` builders of
:mod:`repro.kernels.blas` / :mod:`repro.kernels.lapack`; this module
adds the matching *memory-traffic* models so the machine layer can
derive each signature's arithmetic intensity and price bandwidth-bound
kernels (trsm panels, stencil halo updates) differently from flop-bound
ones (gemm).

Byte counts are leading-order working-set traffic for real double
precision (8-byte words): each operand matrix read once, outputs
counted read+write.  Like the flop models, they are *models* — absolute
accuracy matters less than the relative intensity ordering.

Kernel families register ``(flops, bytes)`` closures over their
signature params at import time; unknown kernel names report an
arithmetic intensity of zero bytes/flop, which disables the roofline
memory ceiling for them (pure ``gamma`` pricing, the pre-roofline
behavior).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.kernels.signature import KernelSignature

__all__ = [
    "register_kernel_model",
    "kernel_bytes",
    "kernel_flops",
    "bytes_per_flop",
]

#: kernel name -> (flops, bytes) closures over the signature params
_MODELS: Dict[str, Tuple[Callable[..., float], Callable[..., float]]] = {}

#: interned signature -> bytes/flop (signatures intern, so identity
#: lookups; the set of distinct comp signatures per run is small)
_BPF_CACHE: Dict[KernelSignature, float] = {}


def register_kernel_model(
    name: str,
    flops: Callable[..., float],
    nbytes: Callable[..., float],
) -> None:
    """Register roofline closures for a computational kernel family.

    ``flops`` and ``nbytes`` are called with the signature's params
    unpacked (the same tuple the ``*_spec`` builders produce), and must
    be pure — the derived bytes/flop ratio is cached per signature.
    """
    _MODELS[name] = (flops, nbytes)
    _BPF_CACHE.clear()


def kernel_flops(sig: KernelSignature) -> float:
    """Model flop count for ``sig``, or 0.0 if no model is registered."""
    model = _MODELS.get(sig.name)
    if model is None or not sig.is_comp:
        return 0.0
    return float(model[0](*sig.params))


def kernel_bytes(sig: KernelSignature) -> float:
    """Model memory traffic in bytes for ``sig``, or 0.0 if unmodeled."""
    model = _MODELS.get(sig.name)
    if model is None or not sig.is_comp:
        return 0.0
    return float(model[1](*sig.params))


def bytes_per_flop(sig: KernelSignature) -> float:
    """Arithmetic intensity (inverted) of a kernel signature.

    Returns bytes moved per flop performed, or 0.0 for communication
    kernels and kernels without a registered roofline model (so the
    machine layer applies no memory ceiling to them).
    """
    cached = _BPF_CACHE.get(sig)
    if cached is None:
        model = _MODELS.get(sig.name)
        if model is None or not sig.is_comp:
            cached = 0.0
        else:
            flops_fn, bytes_fn = model
            flops = float(flops_fn(*sig.params))
            cached = float(bytes_fn(*sig.params)) / flops if flops > 0.0 else 0.0
        _BPF_CACHE[sig] = cached
    return cached
