"""Nonblocking p2p: isend/irecv/wait semantics and overlap."""

import pytest

from repro.kernels.blas import gemm_spec
from repro.sim import Machine, NoiseModel, Simulator

from conftest import make_quiet_sim


class TestIsendRecv:
    def test_isend_blocking_recv(self):
        def prog(comm):
            if comm.rank == 0:
                req = yield comm.isend("tile", dest=1, tag=1, nbytes=64)
                yield comm.wait(req)
                return None
            return (yield comm.recv(source=0, tag=1, nbytes=64))

        res = make_quiet_sim(2).run(prog)
        assert res.returns[1] == "tile"

    def test_isend_does_not_block_sender(self):
        # sender posts isend then computes; a late receiver must not
        # delay the sender's compute
        m = Machine(nprocs=2, gamma=1e-9, alpha=1e-6)
        sim = Simulator(m, noise=NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0))

        def prog(comm):
            if comm.rank == 0:
                yield comm.isend(None, dest=1, nbytes=8)
                yield comm.compute(gemm_spec(10, 10, 10))
                return None
            for _ in range(10):
                yield comm.compute(gemm_spec(10, 10, 10))
            yield comm.recv(source=0, nbytes=8)

        res = sim.run(prog)
        assert res.rank_times[0] < res.rank_times[1]

    def test_blocking_send_does_block(self):
        m = Machine(nprocs=2, gamma=1e-9, alpha=1e-6)
        sim = Simulator(m, noise=NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0))

        def prog(comm):
            if comm.rank == 0:
                yield comm.send(None, dest=1, nbytes=8)
                yield comm.compute(gemm_spec(10, 10, 10))
                return None
            for _ in range(10):
                yield comm.compute(gemm_spec(10, 10, 10))
            yield comm.recv(source=0, nbytes=8)

        res = sim.run(prog)
        # rendezvous: sender waited for the receiver
        assert res.rank_times[0] > res.rank_times[1] * 0.9


class TestIrecv:
    def test_irecv_wait_returns_payload(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.send([1, 2, 3], dest=1, nbytes=24)
                return None
            req = yield comm.irecv(source=0, nbytes=24)
            data = yield comm.wait(req)
            return data

        assert make_quiet_sim(2).run(prog).returns[1] == [1, 2, 3]

    def test_irecv_overlap_compute(self):
        def prog(comm):
            if comm.rank == 0:
                yield comm.compute(gemm_spec(40, 40, 40))
                yield comm.send("x", dest=1, nbytes=8)
                return None
            req = yield comm.irecv(source=0, nbytes=8)
            yield comm.compute(gemm_spec(40, 40, 40))  # overlaps the wait
            return (yield comm.wait(req))

        res = make_quiet_sim(2).run(prog)
        assert res.returns[1] == "x"
        # both ranks did one gemm; overlap means finish times are close
        assert res.rank_times[1] == pytest.approx(res.rank_times[0], rel=0.2)


class TestWaitall:
    def test_waitall_collects_in_order(self):
        def prog(comm):
            if comm.rank == 0:
                reqs = []
                for d in (1, 2, 3):
                    reqs.append((yield comm.isend(d * 100, dest=d, nbytes=8)))
                yield comm.waitall(reqs)
                return None
            return (yield comm.recv(source=0, nbytes=8))

        res = make_quiet_sim(4).run(prog)
        assert res.returns[1:] == [100, 200, 300]

    def test_waitall_irecvs(self):
        def prog(comm):
            if comm.rank == 0:
                reqs = []
                for s in (1, 2, 3):
                    reqs.append((yield comm.irecv(source=s, tag=s, nbytes=8)))
                vals = yield comm.waitall(reqs)
                return vals
            yield comm.send(comm.rank**2, dest=0, tag=comm.rank, nbytes=8)

        res = make_quiet_sim(4).run(prog)
        assert res.returns[0] == [1, 4, 9]

    def test_wait_resumes_at_completion_time(self):
        m = Machine(nprocs=2, alpha=1e-3, beta=0.0, gamma=1e-9)
        sim = Simulator(m, noise=NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0))

        def prog(comm):
            if comm.rank == 0:
                req = yield comm.isend(None, dest=1, nbytes=8)
                yield comm.wait(req)
                return None
            yield comm.compute(gemm_spec(10, 10, 10))
            yield comm.recv(source=0, nbytes=8)

        res = sim.run(prog)
        # the wait had to absorb the transfer latency (alpha = 1 ms)
        assert res.rank_times[0] >= 1e-3
