"""SLATE's tiled Householder QR (Section V.B).

The m x n matrix is tiled (``nb x nb``) block-cyclically on a
``pr x pc`` grid.  Iteration ``k``:

1. ``geqrt`` factors the diagonal tile (k,k); its panel work is
   internally blocked by the tunable width ``w``, which we model by
   splitting the kernel into ``ceil(nb/w)`` sub-kernels named
   ``geqr2`` — the paper does *not* selectively execute these BLAS-2
   panel kernels, so the autotuning harness passes
   ``exclude={"geqr2"}`` to Critter.
2. ``larfb`` applies the block reflector to the row-k tiles.
3. A ``tpqrt`` chain walks down column k: each step stacks the current
   R on the next tile, QRs the stack, and forwards the updated R; the
   resulting (V, T) pairs drive ``tpmqrt`` updates of the paired
   (k,j)/(i,j) tiles, with the top tile shipped to the bottom tile's
   owner and back (SLATE's internode tile fetches).

All communication is point-to-point (isend/recv), matching SLATE's
task-based runtime.  Numeric mode carries real tiles and records every
(Y, T) transform so tests can replay the factorization against numpy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.distribution import TileMap, tile_dim
from repro.kernels import lapack
from repro.kernels.signature import comp_signature
from repro.sim.comm import Comm

__all__ = ["SlateQRConfig", "slate_qr"]


@dataclass(frozen=True, slots=True)
class SlateQRConfig:
    """Tuning configuration of SLATE geqrf."""

    m: int
    n: int
    nb: int   # tile / panel width
    w: int    # inner (BLAS-2) blocking of the panel factorization
    pr: int
    pc: int

    @property
    def nprocs(self) -> int:
        return self.pr * self.pc

    def label(self) -> str:
        return f"w={self.w} nb={self.nb} grid={self.pr}x{self.pc}"


def _geqr2_spec(tm: int, tn: int, w: int):
    """One inner-blocked panel sub-kernel (BLAS-2 flavored)."""
    nchunks = max(1, math.ceil(tn / w))
    sig, flops = lapack.geqrt_spec(tm, tn)
    return comp_signature("geqr2", tm, tn, w), flops / nchunks


def slate_qr(comm: Comm, config: SlateQRConfig,
             a: Optional[np.ndarray] = None):
    """Rank program; returns (tiles, transform log) in numeric mode."""
    tmap = TileMap(config.m, config.n, config.nb, config.pr, config.pc)
    me = comm.rank
    mt, nt = tmap.mt, tmap.nt
    numeric = a is not None

    tiles: Dict[Tuple[int, int], np.ndarray] = {}
    if numeric:
        for (i, j) in tmap.tiles_of(me):
            r0, r1 = i * config.nb, min((i + 1) * config.nb, config.m)
            c0, c1 = j * config.nb, min((j + 1) * config.nb, config.n)
            tiles[(i, j)] = a[r0:r1, c0:c1].astype(float).copy()
    tlog: List[Tuple[str, int, int, np.ndarray, np.ndarray]] = []

    # message tags: one namespace per (phase, k, i, j)
    def tag(phase: int, k: int, i: int = 0, j: int = 0) -> int:
        return ((phase * (nt + 1) + k) * (mt + 1) + i) * (nt + 1) + j

    vt_cache: Dict[Tuple[int, int], object] = {}

    def get_vt(k: int, i: int, src_owner: int, nbytes: int):
        """(V, T) of chain step i (i == k means the diagonal geqrt's)."""
        if src_owner == me:
            return vt_cache.get((k, i))
        key = (k, i)
        if key not in vt_cache:
            val = yield comm.recv(source=src_owner, tag=tag(0, k, i), nbytes=nbytes)
            vt_cache[key] = val
        return vt_cache[key]

    for k in range(nt):
        kk_owner = tmap.owner(k, k)
        tmk = tile_dim(k, config.nb, config.m)
        tnk = tile_dim(k, config.nb, config.n)
        vt_bytes = 8 * (tmk * tnk + tnk * tnk)

        # ---- 1: geqrt on the diagonal tile, inner-blocked by w ----
        if me == kk_owner:
            nchunks = max(1, math.ceil(tnk / config.w))
            if numeric:
                def f_geqrt(t=tiles, k_=k, log=tlog, cache=vt_cache,
                            tn=tnk):
                    y, tmat, r = lapack.qr_factor(t[(k_, k_)])
                    full = np.zeros_like(t[(k_, k_)])
                    full[:tn, :] = r
                    t[(k_, k_)] = full
                    log.append(("geqrt", k_, -1, y, tmat))
                    cache[(k_, k_)] = (y, tmat)
            else:
                f_geqrt = None
            # the panel's geqr2 sub-kernels are one identical-signature
            # batch; the numeric callback runs after the final sub-kernel
            # (exactly where the per-op emission used to attach it)
            yield comm.compute_batch(_geqr2_spec(tmk, tnk, config.w), nchunks,
                                     fn=f_geqrt)
            dests = {tmap.owner(k, j) for j in range(k + 1, nt)} - {me}
            for d in sorted(dests):
                yield comm.isend(payload=vt_cache.get((k, k)), dest=d,
                                 tag=tag(0, k, k), nbytes=vt_bytes)

        # ---- 2: larfb on the row-k tiles ----
        row_js = tmap.row_tiles(me, k, k + 1)
        if row_js:
            vt = yield from get_vt(k, k, kk_owner, vt_bytes)
            for j in row_js:
                tnj = tile_dim(j, config.nb, config.n)
                if numeric and vt is not None:
                    def f_larfb(t=tiles, k_=k, j_=j, vt_=vt):
                        y, tmat = vt_
                        t[(k_, j_)] = lapack.apply_qt(y, tmat, t[(k_, j_)])
                    yield comm.compute(lapack.larfb_spec(tmk, tnj, tnk), fn=f_larfb)
                else:
                    yield comm.compute(lapack.larfb_spec(tmk, tnj, tnk))

        # ---- 3: tpqrt chain down column k with paired tpmqrt updates ----
        r_holder = kk_owner   # rank currently holding the running R
        r_val = None
        if me == kk_owner and numeric:
            r_val = tiles[(k, k)][:tnk, :].copy()
        for i in range(k + 1, mt):
            oi = tmap.owner(i, k)
            tmi = tile_dim(i, config.nb, config.m)
            rbytes = 8 * tnk * tnk
            if me == r_holder and me != oi:
                yield comm.isend(payload=r_val, dest=oi, tag=tag(1, k, i),
                                 nbytes=rbytes)
            if me == oi:
                if me != r_holder:
                    r_val = yield comm.recv(source=r_holder, tag=tag(1, k, i),
                                            nbytes=rbytes)
                if numeric:
                    def f_tpqrt(t=tiles, k_=k, i_=i, log=tlog, cache=vt_cache,
                                tn=tnk):
                        nonlocal r_val
                        stack = np.vstack([r_val, t[(i_, k_)]])
                        y, tmat, r_new = lapack.qr_factor(stack)
                        r_val = r_new
                        t[(i_, k_)] = np.zeros_like(t[(i_, k_)])
                        log.append(("tpqrt", k_, i_, y, tmat))
                        cache[(k_, i_)] = (y, tmat)
                    yield comm.compute(lapack.tpqrt_spec(tmi, tnk), fn=f_tpqrt)
                else:
                    yield comm.compute(lapack.tpqrt_spec(tmi, tnk))
                vt_i_bytes = 8 * ((tnk + tmi) * tnk + tnk * tnk)
                dests = {tmap.owner(i, j) for j in range(k + 1, nt)} - {me}
                for d in sorted(dests):
                    yield comm.isend(payload=vt_cache.get((k, i)), dest=d,
                                     tag=tag(0, k, i), nbytes=vt_i_bytes)
            r_holder = oi

            # paired updates of (k,j) on top of (i,j)
            for j in range(k + 1, nt):
                top_owner = tmap.owner(k, j)
                bot_owner = tmap.owner(i, j)
                tnj = tile_dim(j, config.nb, config.n)
                top_bytes = 8 * tnk * tnj
                if me == top_owner and me != bot_owner:
                    yield comm.isend(payload=tiles.get((k, j)), dest=bot_owner,
                                     tag=tag(2, k, i, j), nbytes=top_bytes)
                if me == bot_owner:
                    vt_i_bytes = 8 * ((tnk + tmi) * tnk + tnk * tnk)
                    vt_i = yield from get_vt(k, i, tmap.owner(i, k), vt_i_bytes)
                    if me != top_owner:
                        top = yield comm.recv(source=top_owner,
                                              tag=tag(2, k, i, j),
                                              nbytes=top_bytes)
                    else:
                        top = tiles.get((k, j))
                    if numeric and vt_i is not None:
                        def f_tpmqrt(t=tiles, k_=k, i_=i, j_=j, vt_=vt_i,
                                     top_=top, tn=tnk):
                            y, tmat = vt_
                            stack = np.vstack([top_[:tn, :], t[(i_, j_)]])
                            out = lapack.apply_qt(y, tmat, stack)
                            new_top = top_.copy()
                            new_top[:tn, :] = out[:tn, :]
                            t[(i_, j_)] = out[tn:, :]
                            t["__top__"] = new_top
                        yield comm.compute(lapack.tpmqrt_spec(tmi, tnj, tnk),
                                           fn=f_tpmqrt)
                        new_top = tiles.pop("__top__", top)
                    else:
                        yield comm.compute(lapack.tpmqrt_spec(tmi, tnj, tnk))
                        new_top = top
                    if me != top_owner:
                        yield comm.isend(payload=new_top, dest=top_owner,
                                         tag=tag(3, k, i, j), nbytes=top_bytes)
                    else:
                        if numeric:
                            tiles[(k, j)] = new_top
                if me == top_owner and me != bot_owner:
                    updated = yield comm.recv(source=bot_owner,
                                              tag=tag(3, k, i, j),
                                              nbytes=top_bytes)
                    if numeric:
                        tiles[(k, j)] = updated

        # ---- chain end: running R returns to the diagonal owner ----
        if r_holder != kk_owner:
            rbytes = 8 * tnk * tnk
            if me == r_holder:
                yield comm.isend(payload=r_val, dest=kk_owner,
                                 tag=tag(4, k), nbytes=rbytes)
            if me == kk_owner:
                r_final = yield comm.recv(source=r_holder, tag=tag(4, k),
                                          nbytes=rbytes)
                if numeric:
                    tiles[(k, k)][:tnk, :] = r_final
        elif me == kk_owner and numeric and mt > k + 1:
            tiles[(k, k)][:tnk, :] = r_val

    return (tiles, tlog) if numeric else None
