"""Markdown summaries of benchmark results.

``pytest benchmarks/`` writes every figure's series to ``results/*.csv``;
this module digests those files back into the measured-vs-paper summary
tables of EXPERIMENTS.md, so the experiment record can be regenerated
from a fresh run with one call (or ``python -m repro.analysis.summary``).
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["SeriesFile", "load_series", "speedup_summary", "error_summary",
           "selection_summary", "distribution_rows", "render_summary"]


@dataclass(slots=True)
class SeriesFile:
    """One figure CSV: per-policy series over the tolerance axis."""

    name: str
    tolerances: List[float]
    series: Dict[str, List[float]]

    @property
    def policies(self) -> List[str]:
        return [p for p in self.series if p != "full-exec"]

    @property
    def reference(self) -> Optional[float]:
        ref = self.series.get("full-exec")
        return ref[0] if ref else None


def load_series(path: str) -> SeriesFile:
    """Parse a per-policy figure CSV written by the benches."""
    with open(path, newline="", encoding="utf-8") as f:
        rows = list(csv.reader(f))
    header, body = rows[0], rows[1:]

    def parse_tol(x: str) -> float:
        # benches write either raw floats ("0.0625") or "2^-4" labels
        if x.startswith("2^"):
            return 2.0 ** float(x[2:])
        return float(x)

    tolerances = [parse_tol(x) for x in header[1:]]
    series = {r[0]: [float(x) for x in r[1:]] for r in body}
    return SeriesFile(
        name=os.path.splitext(os.path.basename(path))[0],
        tolerances=tolerances,
        series=series,
    )


def speedup_summary(sf: SeriesFile) -> List[Tuple[str, float, float]]:
    """(policy, speedup at loosest eps, speedup at tightest eps)."""
    ref = sf.reference
    if ref is None:
        raise ValueError(f"{sf.name} lacks a full-exec reference row")
    out = []
    for p in sf.policies:
        s = sf.series[p]
        out.append((p, ref / s[0], ref / s[-1]))
    return out


def error_summary(sf: SeriesFile) -> List[Tuple[str, float, float]]:
    """(policy, log2 error at loosest eps, at tightest eps)."""
    return [(p, sf.series[p][0], sf.series[p][-1]) for p in sf.policies]


def selection_summary(path: str) -> float:
    """Worst selection quality across all policies and tolerances."""
    sf = load_series(path)
    return min(v for p in sf.policies for v in sf.series[p])


def distribution_rows(path: str) -> List[Tuple[str, float, float, float]]:
    """Parse a ``dist_*.csv`` distribution digest.

    Rows are ``label,p50,p99,cov`` — the per-run-sample order statistics
    the regime-aware benches record (timings are distributions, not
    scalars; P50/P99/CoV is the honest summary).
    """
    with open(path, newline="", encoding="utf-8") as f:
        rows = list(csv.reader(f))
    return [(r[0], float(r[1]), float(r[2]), float(r[3]))
            for r in rows[1:] if len(r) >= 4]


def render_summary(results_dir: str = "results") -> str:
    """Render a markdown digest of everything found in ``results_dir``."""
    lines: List[str] = ["# Benchmark results digest", ""]

    def p(line: str = "") -> None:
        lines.append(line)

    time_figs = sorted(
        f for f in os.listdir(results_dir)
        if f.endswith(".csv") and ("search_time" in f or "kernel" in f and "error" not in f)
    )
    if time_figs:
        p("## Search / kernel time speedups (vs full execution)")
        p()
        p("| figure | policy | loosest eps | tightest eps |")
        p("|---|---|---|---|")
        for fname in time_figs:
            try:
                sf = load_series(os.path.join(results_dir, fname))
                rows = speedup_summary(sf)
            except (ValueError, IndexError):
                continue
            for policy, loose, tight in rows:
                p(f"| {sf.name} | {policy} | {loose:.2f}x | {tight:.2f}x |")
        p()

    err_figs = sorted(
        f for f in os.listdir(results_dir)
        if f.endswith(".csv") and "error" in f and "per_config" not in f
    )
    if err_figs:
        p("## Mean log2 prediction errors")
        p()
        p("| figure | policy | loosest eps | tightest eps |")
        p("|---|---|---|---|")
        for fname in err_figs:
            sf = load_series(os.path.join(results_dir, fname))
            for policy, loose, tight in error_summary(sf):
                p(f"| {sf.name} | {policy} | 2^{loose:.1f} | 2^{tight:.1f} |")
        p()

    sel_figs = sorted(
        f for f in os.listdir(results_dir)
        if f.startswith("selection_quality") and f.endswith(".csv")
    )
    if sel_figs:
        p("## Configuration selection quality (worst case)")
        p()
        p("| space | worst quality |")
        p("|---|---|")
        for fname in sel_figs:
            worst = selection_summary(os.path.join(results_dir, fname))
            space = fname.replace("selection_quality_", "").replace(".csv", "")
            p(f"| {space} | {worst:.3f} |")
        p()

    dist_figs = sorted(
        f for f in os.listdir(results_dir)
        if f.startswith("dist_") and f.endswith(".csv")
    )
    if dist_figs:
        p("## Timing distributions (P50/P99/CoV)")
        p()
        p("| figure | series | P50 | P99 | CoV |")
        p("|---|---|---|---|---|")
        for fname in dist_figs:
            name = os.path.splitext(fname)[0]
            for label, d50, d99, cov in distribution_rows(
                    os.path.join(results_dir, fname)):
                p(f"| {name} | {label} | {d50:.4g} | {d99:.4g} | {cov:.3f} |")
        p()
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    import sys

    print(render_summary(sys.argv[1] if len(sys.argv) > 1 else "results"))
