"""Data and timing semantics of every collective."""

import numpy as np
import pytest

from repro.kernels.blas import gemm_spec
from repro.sim import Machine, NoiseModel, Simulator

from conftest import make_quiet_sim


def run4(program, **kw):
    return make_quiet_sim(4).run(program, **kw)


class TestBcast:
    def test_root_value_everywhere(self):
        def prog(comm):
            val = {"n": 1} if comm.rank == 2 else None
            out = yield comm.bcast(val, root=2, nbytes=8)
            return out

        assert all(r == {"n": 1} for r in run4(prog).returns)

    def test_numpy_payload(self):
        def prog(comm):
            val = np.arange(4.0) if comm.rank == 0 else None
            out = yield comm.bcast(val, root=0)
            return float(out.sum())

        assert run4(prog).returns == [6.0] * 4


class TestReduceAllreduce:
    def test_reduce_sums_at_root(self):
        def prog(comm):
            out = yield comm.reduce(comm.rank + 1, root=1, nbytes=8)
            return out

        assert run4(prog).returns == [None, 10, None, None]

    def test_allreduce_sums_everywhere(self):
        def prog(comm):
            out = yield comm.allreduce(np.full(3, float(comm.rank)))
            return out.tolist()

        assert run4(prog).returns == [[6.0, 6.0, 6.0]] * 4

    def test_allreduce_none_contributions(self):
        def prog(comm):
            out = yield comm.allreduce(comm.rank if comm.rank % 2 else None, nbytes=8)
            return out

        # Nones are ignored; ranks 1 and 3 contribute
        assert run4(prog).returns == [4] * 4


class TestGatherScatter:
    def test_gather_ordered(self):
        def prog(comm):
            out = yield comm.gather(comm.rank * 10, root=0, nbytes=8)
            return out

        assert run4(prog).returns == [[0, 10, 20, 30], None, None, None]

    def test_allgather(self):
        def prog(comm):
            out = yield comm.allgather(chr(ord("a") + comm.rank), nbytes=8)
            return "".join(out)

        assert run4(prog).returns == ["abcd"] * 4

    def test_scatter(self):
        def prog(comm):
            chunks = [i * i for i in range(comm.size)] if comm.rank == 0 else None
            out = yield comm.scatter(chunks, root=0, nbytes=8)
            return out

        assert run4(prog).returns == [0, 1, 4, 9]

    def test_alltoall(self):
        def prog(comm):
            out = yield comm.alltoall([f"{comm.rank}->{j}" for j in range(comm.size)],
                                      nbytes=8)
            return out

        res = run4(prog)
        assert res.returns[2] == ["0->2", "1->2", "2->2", "3->2"]


class TestBarrierTiming:
    def test_barrier_synchronizes_clocks(self):
        def prog(comm):
            for _ in range(comm.rank):
                yield comm.compute(gemm_spec(20, 20, 20))
            yield comm.barrier()
            return None

        res = run4(prog)
        assert max(res.rank_times) == pytest.approx(min(res.rank_times))

    def test_collective_cost_uses_machine_model(self):
        m = Machine(nprocs=4, alpha=1e-6, beta=1e-9)
        sim = Simulator(m, noise=NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0))

        def prog(comm):
            yield comm.bcast(None, root=0, nbytes=1000)

        # binomial tree: log2(4) * (alpha + beta * n)
        assert sim.run(prog).makespan == pytest.approx(2 * (1e-6 + 1e-6))

    def test_late_arrival_sets_start(self):
        def prog(comm):
            if comm.rank == 3:
                for _ in range(5):
                    yield comm.compute(gemm_spec(30, 30, 30))
            yield comm.barrier()

        res = run4(prog)
        base = make_quiet_sim(4).machine.compute_cost(2 * 30**3) * 5
        assert res.makespan >= base


class TestCollectiveSequencing:
    def test_back_to_back_collectives(self):
        def prog(comm):
            a = yield comm.allreduce(1, nbytes=8)
            b = yield comm.allreduce(2, nbytes=8)
            c = yield comm.allgather(comm.rank, nbytes=8)
            return (a, b, tuple(c))

        res = run4(prog)
        assert res.returns == [(4, 8, (0, 1, 2, 3))] * 4

    def test_collectives_on_subcomms_interleave(self):
        def prog(comm):
            sub = yield comm.split(color=comm.rank % 2, key=comm.rank)
            s = yield sub.allreduce(comm.rank, nbytes=8)
            w = yield comm.allreduce(s, nbytes=8)
            return (s, w)

        res = run4(prog)
        # evens sum to 2, odds to 4; world allreduce of (2,4,2,4) = 12
        assert res.returns == [(2, 12), (4, 12), (2, 12), (4, 12)]
