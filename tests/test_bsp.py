"""BSP analytic models and their agreement with measured counters."""

import pytest

from repro.algorithms.candmc_qr import CandmcQRConfig, candmc_qr
from repro.algorithms.capital_cholesky import CapitalCholeskyConfig, capital_cholesky
from repro.bsp import BSPCost, candmc_qr_bsp, capital_cholesky_bsp
from repro.critter import Critter
from repro.sim import Machine, NoiseModel, Simulator


class TestCapitalModel:
    def test_latency_term(self):
        assert capital_cholesky_bsp(16384, 128, 512).latency == 128

    def test_tradeoff_in_block_size(self):
        # latency falls, bandwidth+flops grow as b grows
        small = capital_cholesky_bsp(4096, 32, 64)
        large = capital_cholesky_bsp(4096, 512, 64)
        assert small.latency > large.latency
        assert small.bandwidth < large.bandwidth
        assert small.flops < large.flops

    def test_time_evaluation(self):
        c = BSPCost(latency=10, bandwidth=100, flops=1000)
        assert c.time(1e-6, 1e-9, 1e-10) == pytest.approx(
            1e-5 + 8e-7 + 1e-7
        )


class TestCandmcModel:
    def test_latency_term(self):
        assert candmc_qr_bsp(131072, 8192, 8, 64, 64).latency == 1024

    def test_grid_shape_tradeoff(self):
        tall = candmc_qr_bsp(65536, 4096, 16, 256, 16)
        square = candmc_qr_bsp(65536, 4096, 16, 64, 64)
        # taller grids shrink the m/pr term but grow n^2/pc
        assert tall.bandwidth != square.bandwidth

    def test_block_size_tradeoff(self):
        small = candmc_qr_bsp(65536, 4096, 8, 64, 64)
        large = candmc_qr_bsp(65536, 4096, 128, 64, 64)
        assert small.latency > large.latency
        assert small.flops < large.flops


class TestMeasuredAgreement:
    """The simulator's critical-path counters must track the models."""

    def _capital_counters(self, b, n=256, c=2):
        cfg = CapitalCholeskyConfig(n=n, block=b, c=c, base_strategy=2)
        cr = Critter(policy="never-skip")
        sim = Simulator(
            Machine(nprocs=8, seed=0),
            noise=NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0),
            profiler=cr,
        )
        sim.run(capital_cholesky, args=(cfg,))
        return cr.last_report.predicted

    def test_capital_synch_ratio_tracks_model(self):
        # model: latency ~ n/b, so b: 8 -> 32 should cut supersteps ~4x
        s8 = self._capital_counters(8).synchs
        s32 = self._capital_counters(32).synchs
        ratio = s8 / s32
        assert 2.5 < ratio < 6.0

    def test_capital_flops_grow_with_block(self):
        f16 = self._capital_counters(16).flops
        f128 = self._capital_counters(128).flops
        model16 = capital_cholesky_bsp(256, 16, 8).flops
        model128 = capital_cholesky_bsp(256, 128, 8).flops
        assert f128 > f16
        assert model128 > model16

    def _candmc_counters(self, b, pr, pc, m=256, n=64):
        cfg = CandmcQRConfig(m=m, n=n, b=b, pr=pr, pc=pc)
        cr = Critter(policy="never-skip")
        sim = Simulator(
            Machine(nprocs=pr * pc, seed=0),
            noise=NoiseModel(bias_sigma=0, comp_cv=0, comm_cv=0, run_cv=0),
            profiler=cr,
        )
        sim.run(candmc_qr, args=(cfg,))
        return cr.last_report.predicted

    def test_candmc_synchs_track_panel_count(self):
        s4 = self._candmc_counters(4, 2, 2).synchs
        s16 = self._candmc_counters(16, 2, 2).synchs
        assert s4 > 2.5 * s16  # n/b = 16 vs 4 panels
