"""Exhaustive tuner: the paper's search protocol and its headline trends."""

import math

import pytest

from repro.autotune import (
    ExhaustiveTuner,
    capital_cholesky_space,
    measure_ground_truth,
    slate_cholesky_space,
)
from repro.autotune.tuner import default_machine


@pytest.fixture(scope="module")
def mini_space():
    # 6 configs: b in {4..64} strat 1, b=4 strat 2 — fast but non-trivial
    return capital_cholesky_space(n=64, c=2, b0=4, nconf=6)


@pytest.fixture(scope="module")
def mini_machine(mini_space):
    return default_machine(mini_space, seed=11)


@pytest.fixture(scope="module")
def mini_ground(mini_space, mini_machine):
    return measure_ground_truth(mini_space, mini_machine, full_reps=3, seed=0)


def tune(space, machine, ground, policy, eps, reps=3):
    return ExhaustiveTuner(
        space, machine, policy=policy, eps=eps, reps=reps,
        ground_truth=ground, seed=0,
    ).run()


class TestProtocol:
    def test_one_outcome_per_config(self, mini_space, mini_machine, mini_ground):
        res = tune(mini_space, mini_machine, mini_ground, "conditional", 0.25)
        assert len(res.outcomes) == len(mini_space)
        assert [o.index for o in res.outcomes] == list(range(6))

    def test_ground_truth_reused(self, mini_space, mini_machine, mini_ground):
        r1 = tune(mini_space, mini_machine, mini_ground, "conditional", 0.25)
        r2 = tune(mini_space, mini_machine, mini_ground, "online", 0.25)
        assert [o.full_time for o in r1.outcomes] == [o.full_time for o in r2.outcomes]

    def test_outcome_fields_sane(self, mini_space, mini_machine, mini_ground):
        res = tune(mini_space, mini_machine, mini_ground, "online", 0.25)
        for o in res.outcomes:
            assert o.full_time > 0
            assert o.tuning_time > 0
            assert 0 <= o.skip_fraction <= 1
            assert math.isfinite(o.exec_error)
            assert math.isfinite(o.comp_error)

    def test_apriori_charges_offline_pass(self, mini_space, mini_machine, mini_ground):
        ap = tune(mini_space, mini_machine, mini_ground, "apriori", 0.25)
        assert all(o.offline_time > 0 for o in ap.outcomes)
        cond = tune(mini_space, mini_machine, mini_ground, "conditional", 0.25)
        assert all(o.offline_time == 0 for o in cond.outcomes)
        assert ap.search_time > cond.search_time

    def test_speedup_definition(self, mini_space, mini_machine, mini_ground):
        res = tune(mini_space, mini_machine, mini_ground, "online", 0.25)
        assert res.search_speedup == pytest.approx(
            res.full_search_time / res.search_time
        )


class TestPaperTrends:
    def test_selective_execution_accelerates(self, mini_space, mini_machine, mini_ground):
        res = tune(mini_space, mini_machine, mini_ground, "conditional", 0.5)
        assert res.search_speedup > 1.5

    def test_tight_tolerance_approaches_full_execution(
        self, mini_space, mini_machine, mini_ground
    ):
        loose = tune(mini_space, mini_machine, mini_ground, "conditional", 1.0)
        tight = tune(mini_space, mini_machine, mini_ground, "conditional", 2**-10)
        assert tight.search_time > loose.search_time
        assert tight.search_speedup < 1.3

    def test_error_decreases_with_tolerance(self, mini_space, mini_machine, mini_ground):
        loose = tune(mini_space, mini_machine, mini_ground, "online", 1.0)
        tight = tune(mini_space, mini_machine, mini_ground, "online", 2**-8)
        assert tight.mean_log2_exec_error < loose.mean_log2_exec_error + 0.5

    def test_eager_beats_conditional(self, mini_space, mini_machine, mini_ground):
        eager = tune(mini_space, mini_machine, mini_ground, "eager", 0.5)
        cond = tune(mini_space, mini_machine, mini_ground, "conditional", 0.5)
        assert eager.search_time < cond.search_time

    def test_selection_quality_high(self, mini_space, mini_machine, mini_ground):
        res = tune(mini_space, mini_machine, mini_ground, "online", 2**-4)
        assert res.selection_quality >= 0.9

    def test_skip_fraction_grows_with_tolerance(
        self, mini_space, mini_machine, mini_ground
    ):
        loose = tune(mini_space, mini_machine, mini_ground, "conditional", 1.0)
        tight = tune(mini_space, mini_machine, mini_ground, "conditional", 2**-10)
        mean_loose = sum(o.skip_fraction for o in loose.outcomes) / 6
        mean_tight = sum(o.skip_fraction for o in tight.outcomes) / 6
        assert mean_loose > mean_tight


class TestSlateSpaceIntegration:
    def test_slate_cholesky_tunes(self):
        space = slate_cholesky_space(n=128, pr=2, pc=2, t0=32, dt=16, nconf=4)
        machine = default_machine(space, seed=5)
        ground = measure_ground_truth(space, machine, full_reps=2, seed=0)
        res = ExhaustiveTuner(space, machine, policy="online", eps=0.25,
                              reps=2, ground_truth=ground, seed=0).run()
        assert len(res.outcomes) == 4
        assert res.search_speedup > 1.0
        assert res.selection_quality > 0.8
