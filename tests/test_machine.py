"""Machine model: alpha-beta-gamma costs and collective formulas."""

import math

import pytest

from repro.kernels.signature import comm_signature, comp_signature
from repro.sim.machine import CollectiveCosts, Machine


@pytest.fixture
def cc() -> CollectiveCosts:
    return CollectiveCosts(alpha=1e-6, beta=1e-9)


class TestP2P:
    def test_latency_only(self, cc):
        assert cc.p2p(0) == pytest.approx(1e-6)

    def test_bandwidth_term(self, cc):
        assert cc.p2p(10**6) == pytest.approx(1e-6 + 1e-3)


class TestCollectiveFormulas:
    def test_bcast_log_scaling(self, cc):
        assert cc.bcast(0, 16) == pytest.approx(4 * 1e-6)
        assert cc.bcast(0, 17) == pytest.approx(5 * 1e-6)

    def test_bcast_monotone_in_p(self, cc):
        costs = [cc.bcast(1024, p) for p in (2, 4, 8, 16, 64)]
        assert costs == sorted(costs)

    def test_bcast_monotone_in_bytes(self, cc):
        costs = [cc.bcast(n, 8) for n in (0, 100, 10_000, 10**6)]
        assert costs == sorted(costs)

    def test_allreduce_more_latency_than_reduce(self, cc):
        # recursive halving+doubling pays ~2x the tree latency (its
        # bandwidth term is better, so compare latency-bound messages)
        assert cc.allreduce(0, 16) > cc.reduce(0, 16)

    def test_allgather_bandwidth_scales_with_p(self, cc):
        # each rank ends with (p-1) remote contributions
        a8 = cc.allgather(1024, 8)
        a16 = cc.allgather(1024, 16)
        assert a16 > a8

    def test_barrier_free_of_bytes(self, cc):
        assert cc.barrier(8) == pytest.approx(2 * 3 * 1e-6)

    def test_dispatch_by_name(self, cc):
        for name in ("bcast", "reduce", "allreduce", "gather", "allgather",
                     "scatter", "alltoall"):
            assert cc.cost(name, 128, 4) > 0

    def test_dispatch_barrier(self, cc):
        assert cc.cost("barrier", 0, 4) == cc.barrier(4)

    def test_unknown_collective_raises(self, cc):
        with pytest.raises(ValueError):
            cc.cost("reduce_scatter_block", 1, 4)


class TestMachine:
    def test_compute_cost_linear_in_flops(self):
        m = Machine(nprocs=4, gamma=1e-10)
        assert m.compute_cost(1e9) == pytest.approx(0.1)
        assert m.compute_cost(2e9) == pytest.approx(0.2)

    def test_comm_cost_p2p_signature(self):
        m = Machine(nprocs=4, alpha=1e-6, beta=1e-9)
        sig = comm_signature("p2p", 1000, 2, 1)
        assert m.comm_cost(sig) == pytest.approx(1e-6 + 1e-6)

    def test_comm_cost_collective_signature(self):
        m = Machine(nprocs=8, alpha=1e-6, beta=0.0)
        sig = comm_signature("bcast", 0, 8, 1)
        assert m.comm_cost(sig) == pytest.approx(3e-6)

    def test_base_cost_dispatch(self):
        m = Machine(nprocs=2)
        assert m.base_cost(comp_signature("gemm", 8, 8, 8), flops=1e6) == (
            pytest.approx(m.gamma * 1e6)
        )
        assert m.base_cost(comm_signature("p2p", 8, 2, 1)) == pytest.approx(
            m.alpha + 8 * m.beta
        )

    def test_internal_cost_scales_with_ranks(self):
        m = Machine(nprocs=64)
        assert m.internal_cost(64) > m.internal_cost(2) > 0

    def test_machine_frozen(self):
        m = Machine(nprocs=4)
        with pytest.raises(Exception):
            m.alpha = 1.0  # type: ignore[misc]
