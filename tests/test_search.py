"""Search strategies composed with selective execution."""

import pytest

from repro.autotune import capital_cholesky_space, measure_ground_truth
from repro.autotune.search import (
    ExhaustiveSearch,
    RandomSearch,
    SearchResult,
    SuccessiveHalving,
)
from repro.autotune.tuner import default_machine


@pytest.fixture(scope="module")
def setup():
    space = capital_cholesky_space(n=128, c=2, b0=4, nconf=10)
    machine = default_machine(space, seed=41)
    ground = measure_ground_truth(space, machine, full_reps=2, seed=0)
    return space, machine, ground


class TestExhaustive:
    def test_visits_everything(self, setup):
        space, machine, ground = setup
        res = ExhaustiveSearch(space, machine, eps=2**-3, seed=0,
                               ground_truth=ground).run(reps=2)
        assert len(res.predictions) == len(space)
        assert res.evaluations == 2 * len(space)
        assert res.selection_quality > 0.9

    def test_result_fields(self, setup):
        space, machine, ground = setup
        res = ExhaustiveSearch(space, machine, eps=2**-3, seed=0,
                               ground_truth=ground).run(reps=1)
        assert isinstance(res, SearchResult)
        assert 0 <= res.chosen < len(space)
        assert res.tuning_time > 0

    def test_quality_requires_ground(self, setup):
        space, machine, _ = setup
        res = ExhaustiveSearch(space, machine, eps=2**-3, seed=0).run(reps=1)
        with pytest.raises(ValueError):
            _ = res.selection_quality


class TestRandom:
    def test_respects_budget(self, setup):
        space, machine, ground = setup
        res = RandomSearch(space, machine, eps=2**-3, seed=0,
                           ground_truth=ground).run(budget=4, reps=2)
        assert len(res.predictions) == 4
        assert res.evaluations == 8

    def test_budget_clamped(self, setup):
        space, machine, ground = setup
        res = RandomSearch(space, machine, eps=2**-3, seed=0,
                           ground_truth=ground).run(budget=100, reps=1)
        assert len(res.predictions) == len(space)

    def test_deterministic_given_seed(self, setup):
        space, machine, ground = setup
        r1 = RandomSearch(space, machine, eps=2**-3, seed=5,
                          ground_truth=ground).run(budget=4, reps=1)
        r2 = RandomSearch(space, machine, eps=2**-3, seed=5,
                          ground_truth=ground).run(budget=4, reps=1)
        assert set(r1.predictions) == set(r2.predictions)
        assert r1.chosen == r2.chosen

    def test_cheaper_than_exhaustive(self, setup):
        space, machine, ground = setup
        rnd = RandomSearch(space, machine, eps=2**-3, seed=0,
                           ground_truth=ground).run(budget=3, reps=2)
        exh = ExhaustiveSearch(space, machine, eps=2**-3, seed=0,
                               ground_truth=ground).run(reps=2)
        assert rnd.tuning_time < exh.tuning_time


class TestSuccessiveHalving:
    def test_converges_to_single_config(self, setup):
        space, machine, ground = setup
        res = SuccessiveHalving(space, machine, eps=2**-3, seed=0,
                                ground_truth=ground).run(base_reps=1)
        assert len(res.predictions) == len(space)  # everything measured once
        assert 0 <= res.chosen < len(space)
        assert res.selection_quality > 0.85

    def test_prunes_measurements(self, setup):
        space, machine, ground = setup
        sh = SuccessiveHalving(space, machine, eps=2**-3, seed=0,
                               ground_truth=ground).run(base_reps=1)
        # rounds: 10 + 5*2 + 2*4 + 1*8 = 36 <= exhaustive at depth 8 = 80
        exh = ExhaustiveSearch(space, machine, eps=2**-3, seed=0,
                               ground_truth=ground).run(reps=8)
        assert sh.evaluations < exh.evaluations
        assert sh.tuning_time < exh.tuning_time

    def test_eta_controls_shrinkage(self, setup):
        space, machine, ground = setup
        fast = SuccessiveHalving(space, machine, eps=2**-3, seed=0,
                                 ground_truth=ground).run(base_reps=1, eta=4)
        slow = SuccessiveHalving(space, machine, eps=2**-3, seed=0,
                                 ground_truth=ground).run(base_reps=1, eta=2)
        assert fast.evaluations <= slow.evaluations
