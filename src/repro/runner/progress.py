"""Runner progress events and logging callbacks.

The runner reports each job through a callback instead of printing, so
drivers (CLI, benchmarks, notebooks) choose how progress is rendered.
:func:`logging_progress` emits one parseable ``key=value`` line per job
through the standard :mod:`logging` machinery — headless runs get logs
that machines can grep and humans can read, and quiet runs simply leave
the logger unconfigured.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, Optional

from repro.runner.jobs import RunRequest

__all__ = ["RunEvent", "ProgressCallback", "logging_progress", "LOGGER_NAME"]

LOGGER_NAME = "repro.runner"


@dataclass(slots=True)
class RunEvent:
    """One completed (or cache-served, or quarantined-failed) job."""

    index: int          # 0-based position in the submitted batch
    total: int          # batch size
    request: RunRequest
    cached: bool
    #: ``"ok"`` or ``"failed"`` (a quarantined job under a resilient
    #: executor — the batch keeps going, the event says so)
    status: str = "ok"

    def describe(self) -> str:
        line = (f"job={self.index + 1}/{self.total} {self.request.describe()} "
                f"cached={'yes' if self.cached else 'no'}")
        if self.status != "ok":
            line += f" status={self.status}"
        return line


ProgressCallback = Callable[[RunEvent], None]


def logging_progress(logger: Optional[logging.Logger] = None,
                     level: int = logging.INFO) -> ProgressCallback:
    """A progress callback that logs one line per job."""
    log = logger if logger is not None else logging.getLogger(LOGGER_NAME)

    def callback(event: RunEvent) -> None:
        log.log(level, "%s", event.describe())

    return callback
