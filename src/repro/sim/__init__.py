"""Discrete-event simulator of a distributed-memory (MPI) machine.

This package is the substrate that replaces Stampede2 + Intel MPI in the
reproduction.  Rank programs are written as Python generators against an
mpi4py-flavoured :class:`~repro.sim.comm.Comm` API::

    def program(comm):
        data = yield comm.bcast(data, root=0, nbytes=8 * 1024)
        yield comm.compute(sig, flops=1e6)
        sub = yield comm.split(color=comm.rank % 2, key=comm.rank)
        ...

The :class:`~repro.sim.engine.Simulator` advances a per-rank virtual
clock, matches point-to-point messages, rendezvouses collectives, and
charges costs from a :class:`~repro.sim.machine.Machine` model
(alpha-beta-gamma with per-collective tree algorithms) perturbed by a
deterministic :class:`~repro.sim.noise.NoiseModel`.

Every MPI-level event funnels through a
:class:`~repro.sim.profiler.Profiler` hook — the exact interposition
point PMPI provides to the real Critter tool.  The default
:class:`~repro.sim.profiler.NullProfiler` executes everything;
:class:`repro.critter.Critter` implements selective execution.
"""

from repro.sim.machine import Machine, CollectiveCosts
from repro.sim.noise import NoiseModel
from repro.sim.engine import Simulator, SimResult, DeadlockError
from repro.sim.comm import Comm
from repro.sim.presets import PRESETS, MachinePreset, make_machine
from repro.sim.profiler import Profiler, NullProfiler, Decision
from repro.sim.trace import TraceRecorder, TraceEvent

__all__ = [
    "Machine",
    "CollectiveCosts",
    "NoiseModel",
    "Simulator",
    "SimResult",
    "DeadlockError",
    "Comm",
    "Profiler",
    "NullProfiler",
    "Decision",
    "TraceRecorder",
    "TraceEvent",
    "MachinePreset",
    "PRESETS",
    "make_machine",
]
