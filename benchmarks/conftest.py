"""Benchmark fixtures: session-shared sweeps for the per-panel benches.

All shared machinery lives in :mod:`bench_profiles` (importable by the
bench modules without colliding with the test suite's ``conftest``);
this file only binds it to pytest fixtures.
"""

from __future__ import annotations

import pytest

from bench_profiles import SweepResult, get_sweep


@pytest.fixture(scope="session")
def capital_sweep() -> SweepResult:
    return get_sweep("capital_cholesky")


@pytest.fixture(scope="session")
def slate_chol_sweep() -> SweepResult:
    return get_sweep("slate_cholesky")


@pytest.fixture(scope="session")
def candmc_sweep() -> SweepResult:
    return get_sweep("candmc_qr")


@pytest.fixture(scope="session")
def slate_qr_sweep() -> SweepResult:
    return get_sweep("slate_qr")
