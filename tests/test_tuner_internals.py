"""Tuner internals: seeding discipline and ground-truth bookkeeping."""

import pytest

from repro.autotune.tuner import GroundTruth, _seed_for
from repro.critter.pathset import PathMetrics


class TestSeedDiscipline:
    def test_seeds_unique_across_roles(self):
        """Full, selective, and offline runs of any (config, rep) must
        never share an RNG stream — shared streams would correlate the
        'independent' measurements the statistics assume."""
        seen = set()
        for base in (0, 1):
            for idx in range(20):
                for rep in range(8):
                    for kw in ({}, {"full": True}, {"offline": True}):
                        s = _seed_for(base, idx, rep, **kw)
                        assert s not in seen, (base, idx, rep, kw)
                        seen.add(s)

    def test_deterministic(self):
        assert _seed_for(3, 5, 2) == _seed_for(3, 5, 2)

    def test_base_seed_shifts_everything(self):
        a = {_seed_for(0, i, r) for i in range(5) for r in range(5)}
        b = {_seed_for(1, i, r) for i in range(5) for r in range(5)}
        assert not (a & b)


class TestGroundTruth:
    def _gt(self, times):
        return GroundTruth(times=times, path=PathMetrics(),
                           max_rank_comp_time=0.0, max_rank_kernel_time=0.0)

    def test_mean(self):
        assert self._gt([1.0, 2.0, 3.0]).mean_time == pytest.approx(2.0)

    def test_noise_cv(self):
        gt = self._gt([1.0, 1.0, 1.0])
        assert gt.noise_cv == 0.0
        noisy = self._gt([0.9, 1.0, 1.1])
        assert 0.05 < noisy.noise_cv < 0.15

    def test_noise_cv_single_sample(self):
        assert self._gt([2.0]).noise_cv == 0.0
